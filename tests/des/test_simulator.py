"""The OOD baseline engine: physics sanity and bookkeeping."""

import pytest

from repro.des import run_baseline
from repro.des.simulator import OodSimulator
from repro.metrics import TraceKind, TraceLevel
from repro.protocols.packet import HEADER_BYTES, MSS, segment_count
from repro.scenario import make_scenario
from repro.topology import dumbbell
from repro.traffic import Flow, Transport
from repro.units import GBPS, serialization_time_ps, us


class TestPhysics:
    def test_single_udp_flow_fct_exact(self):
        """One unconstrained UDP flow: FCT is pure pipe arithmetic."""
        topo = dumbbell(1, edge_rate_bps=10 * GBPS,
                        bottleneck_rate_bps=10 * GBPS, delay_ps=us(1))
        size = 10 * MSS
        sc = make_scenario(topo, [Flow(0, 0, 1, size, 0, Transport.UDP)])
        res = run_baseline(sc)
        # Store-and-forward through 2 switches, NIC-paced source:
        # last byte leaves the source at 10 * ser; then each of the two
        # remaining hops adds one serialization; plus 3 link delays.
        ser = serialization_time_ps(MSS + HEADER_BYTES, 10 * GBPS)
        expected = 10 * ser + 2 * ser + 3 * us(1)
        assert res.fcts_ps() == [expected]

    def test_dctcp_flow_completes_with_sane_fct(self, dumbbell_scenario):
        res = run_baseline(dumbbell_scenario)
        assert res.completed() == 4
        # 4 x 150 KB over a shared 10G bottleneck: >= 480 us aggregate.
        assert all(f >= 480 * 1_000_000 for f in res.fcts_ps())
        assert all(f < 2_000 * 1_000_000 for f in res.fcts_ps())

    def test_rtt_floor_is_physical(self, dumbbell_scenario):
        res = run_baseline(dumbbell_scenario)
        # min RTT: 4 links out + 4 back, 1 us each, plus serializations.
        assert min(res.rtts_ps()) > 8 * us(1)

    def test_bottleneck_throughput_not_exceeded(self):
        topo = dumbbell(4, edge_rate_bps=10 * GBPS,
                        bottleneck_rate_bps=1 * GBPS)
        flows = [Flow(i, i, 4 + i, 100_000, 0) for i in range(4)]
        res = run_baseline(make_scenario(topo, flows))
        total_bits = 4 * 100_000 * 8
        # wall time >= payload / bottleneck rate
        assert res.fcts_ps()[-1] >= total_bits / 1e9 * 1e12 * 0.9


class TestBookkeeping:
    def test_event_counts_consistent(self, fattree4_scenario):
        res = run_baseline(fattree4_scenario)
        # every transmitted packet was serialized somewhere
        assert res.events.transmit >= res.events.send
        # forwarding happens at switches only, at least once per packet
        assert res.events.forward >= res.events.send
        assert res.events.total == (res.events.send + res.events.forward
                                    + res.events.transmit + res.events.ack)

    def test_node_events_cover_all_traffic_nodes(self, fattree4_scenario):
        res = run_baseline(fattree4_scenario)
        touched = set(res.node_events)
        for f in fattree4_scenario.flows:
            assert f.src in touched and f.dst in touched

    def test_trace_levels(self, dumbbell_scenario):
        none = run_baseline(dumbbell_scenario, TraceLevel.NONE)
        ports = run_baseline(dumbbell_scenario, TraceLevel.PORTS)
        full = run_baseline(dumbbell_scenario, TraceLevel.FULL)
        assert len(none.trace) == 0
        assert 0 < len(ports.trace) < len(full.trace)
        kinds = {e[1] for e in full.trace.entries}
        assert {TraceKind.ENQ, TraceKind.DEQ, TraceKind.DELIVER,
                TraceKind.FLOW_DONE} <= kinds

    def test_duration_cutoff(self, dumbbell_scenario):
        import dataclasses
        sc = dataclasses.replace(dumbbell_scenario, duration_ps=us(50))
        res = run_baseline(sc)
        assert res.end_time_ps <= us(50)
        assert res.completed() < 4

    def test_max_events_guard(self, dumbbell_scenario):
        sim = OodSimulator(dumbbell_scenario, max_events=100)
        res = sim.run()
        # the guard caps *processed heap events*; one heap event can
        # account several semantic events (an ACK triggers sends)
        assert sim.queue.popped <= 100
        assert res.completed() < 4

    def test_deterministic_across_runs(self, fattree4_scenario):
        a = run_baseline(fattree4_scenario, TraceLevel.FULL)
        b = run_baseline(fattree4_scenario, TraceLevel.FULL)
        assert a.trace.entries == b.trace.entries
        assert a.fcts_ps() == b.fcts_ps()

    def test_marks_appear_under_congestion(self):
        topo = dumbbell(8, edge_rate_bps=10 * GBPS,
                        bottleneck_rate_bps=1 * GBPS)
        flows = [Flow(i, i, 8 + i, 200_000, 0) for i in range(8)]
        res = run_baseline(make_scenario(topo, flows))
        assert res.marks > 0

    def test_drops_and_recovery_with_tiny_buffer(self):
        topo = dumbbell(8, edge_rate_bps=10 * GBPS,
                        bottleneck_rate_bps=1 * GBPS)
        flows = [Flow(i, i, 8 + i, 150_000, 0) for i in range(8)]
        res = run_baseline(make_scenario(topo, flows, buffer_bytes=15_000))
        assert res.drops > 0
        assert res.completed() == 8, "retransmission must recover all drops"

    def test_all_bytes_delivered_exactly_once(self, fattree4_scenario):
        res = run_baseline(fattree4_scenario)
        assert res.completed() == len(fattree4_scenario.flows)
