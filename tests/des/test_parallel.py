"""Multi-LP parallel baseline: partitions, channels, null messages."""

import pytest

from repro.des import (
    ParallelOodSimulator, Partition, contiguous_partition, random_partition,
    run_baseline, single_partition,
)
from repro.des.parallel import lp_duplicated_state
from repro.errors import PartitionError, SimulationError
from repro.metrics import TraceLevel
from repro.scenario import make_scenario
from repro.topology import dumbbell, fattree
from repro.traffic import Flow
from repro.units import GBPS, us


class TestPartitionTypes:
    def test_single_partition(self, fattree4):
        p = single_partition(fattree4)
        assert p.num_parts == 1
        assert set(p.assignment) == {0}

    def test_random_partition_covers_all_parts(self, fattree4):
        p = random_partition(fattree4, 4, seed=1)
        assert set(p.assignment) == {0, 1, 2, 3}
        assert len(p.assignment) == fattree4.num_nodes

    def test_random_partition_deterministic(self, fattree4):
        assert (random_partition(fattree4, 3, 7).assignment
                == random_partition(fattree4, 3, 7).assignment)

    def test_contiguous_partition_balanced(self, fattree4):
        p = contiguous_partition(fattree4, 4)
        sizes = p.part_sizes()
        assert max(sizes) - min(sizes) <= 1

    def test_cut_links(self, small_dumbbell):
        # hosts 0..7, swL=8, swR=9
        p = Partition(tuple([0] * 4 + [1] * 4 + [0, 1]), 2)
        cut = p.cut_links(small_dumbbell)
        assert len(cut) == 1  # only the bottleneck link is cut
        assert p.is_cut(small_dumbbell, cut[0])

    def test_invalid_partitions_rejected(self):
        with pytest.raises(PartitionError):
            Partition((), 1)
        with pytest.raises(PartitionError):
            Partition((0, 3), 2)  # part id out of range


class TestParallelExecution:
    def _scenario(self):
        topo = fattree(4, rate_bps=10 * GBPS, delay_ps=us(1))
        hosts = topo.hosts
        flows = [Flow(i, hosts[i], hosts[15 - i], 50_000, i * us(1))
                 for i in range(8)]
        return make_scenario(topo, flows, buffer_bytes=40_000)

    @pytest.mark.parametrize("k,seed", [(2, 1), (3, 2), (4, 3)])
    def test_matches_sequential(self, k, seed):
        sc = self._scenario()
        ref = run_baseline(sc, TraceLevel.FULL)
        psim = ParallelOodSimulator(
            sc, random_partition(sc.topology, k, seed), TraceLevel.FULL)
        res = psim.run()
        assert sorted(res.trace.entries) == sorted(ref.trace.entries)
        assert res.fcts_ps() == ref.fcts_ps()
        assert res.events.total == ref.events.total

    def test_sync_statistics_populated(self):
        sc = self._scenario()
        psim = ParallelOodSimulator(sc, random_partition(sc.topology, 2, 1))
        psim.run()
        st = psim.stats
        assert st.rounds > 0
        assert st.null_messages > 0
        assert st.data_messages > 0
        assert len(st.lp_events) == 2
        assert sum(st.lp_events) > 0

    def test_worse_partition_more_messages(self):
        sc = self._scenario()
        rand = ParallelOodSimulator(sc, random_partition(sc.topology, 2, 1))
        rand.run()
        cont = ParallelOodSimulator(sc, contiguous_partition(sc.topology, 2))
        cont.run()
        assert rand.stats.data_messages >= cont.stats.data_messages

    def test_partition_size_mismatch_raises(self, dumbbell_scenario):
        bad = Partition(tuple([0] * 3), 1)
        with pytest.raises(SimulationError):
            ParallelOodSimulator(dumbbell_scenario, bad)

    def test_lp_duplicated_state(self, fattree4_scenario):
        dup = lp_duplicated_state(fattree4_scenario, 8)
        assert dup["lps"] == 8
        assert dup["nodes_per_lp"] == fattree4_scenario.topology.num_nodes
        assert dup["fib_entries_per_lp"] == fattree4_scenario.fib.entry_count()
