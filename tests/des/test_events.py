"""Event heap: the ordering contract's total order."""

from repro.des.events import (
    EventQueue, KIND_ARRIVAL, KIND_FLOW_START, KIND_PORT_DONE, KIND_TIMER,
)


def test_time_dominates():
    q = EventQueue()
    q.push(200, KIND_PORT_DONE, 0, 0, 0, "late")
    q.push(100, KIND_TIMER, 9, 0, 0, "early")
    assert q.pop()[5] == "early"


def test_kind_order_at_equal_time():
    q = EventQueue()
    q.push(100, KIND_TIMER, 0, 0, 0, "timer")
    q.push(100, KIND_ARRIVAL, 0, 0, 0, "arrival")
    q.push(100, KIND_FLOW_START, 0, 0, 0, "start")
    q.push(100, KIND_PORT_DONE, 0, 0, 0, "done")
    order = [q.pop()[5] for _ in range(4)]
    assert order == ["done", "arrival", "start", "timer"]


def test_arrival_tiebreak_by_flow_then_ack_then_seq():
    q = EventQueue()
    q.push(1, KIND_ARRIVAL, 2, 0, 5, "f2d5")
    q.push(1, KIND_ARRIVAL, 1, 1, 0, "f1a0")
    q.push(1, KIND_ARRIVAL, 1, 0, 7, "f1d7")
    q.push(1, KIND_ARRIVAL, 1, 0, 3, "f1d3")
    order = [q.pop()[5] for _ in range(4)]
    assert order == ["f1d3", "f1d7", "f1a0", "f2d5"]


def test_counters_and_len():
    q = EventQueue()
    assert not q
    q.push(1, 0, 0, 0, 0, None)
    q.push(2, 0, 0, 0, 0, None)
    assert len(q) == 2 and q.pushed == 2
    assert q.peek_time() == 1
    q.pop()
    assert q.popped == 1
    assert len(q) == 1
