"""NetVision-lite rendering."""

import xml.etree.ElementTree as ET

import pytest

from repro.core.engine import run_dons
from repro.partition.loadest import estimate_scenario_loads
from repro.viz import (
    ascii_heatmap, flow_gantt_svg, link_utilization_svg, sparkline,
    window_breakdown_heatmap,
)


@pytest.fixture(scope="module")
def run(request):
    from repro.scenario import make_scenario
    from repro.topology import dumbbell
    from repro.traffic import Flow
    from repro.units import GBPS
    topo = dumbbell(4, edge_rate_bps=10 * GBPS,
                    bottleneck_rate_bps=10 * GBPS)
    flows = [Flow(i, i, 4 + i, 150_000, 0) for i in range(4)]
    sc = make_scenario(topo, flows)
    return sc, run_dons(sc)


class TestSvg:
    def test_gantt_is_valid_svg_with_all_flows(self, run):
        scenario, results = run
        svg = flow_gantt_svg(results, scenario)
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")
        rects = [e for e in root.iter() if e.tag.endswith("rect")]
        assert len(rects) == 4
        texts = "".join(e.text or "" for e in root.iter())
        assert "f0" in texts and "f3" in texts

    def test_gantt_marks_unfinished_flows(self, run):
        scenario, results = run
        import copy
        partial = copy.deepcopy(results)
        partial.flows[0].complete_ps = None
        svg = flow_gantt_svg(partial, scenario)
        assert "stroke-dasharray" in svg

    def test_link_utilization_svg(self, run):
        scenario, results = run
        loads = estimate_scenario_loads(scenario)
        svg = link_utilization_svg(loads, scenario, results.end_time_ps)
        root = ET.fromstring(svg)
        rects = [e for e in root.iter() if e.tag.endswith("rect")]
        assert rects, "no utilization bars"

    def test_gantt_escapes_names(self, run):
        scenario, results = run
        import dataclasses
        weird = dataclasses.replace(scenario)
        object.__setattr__(results, "scenario_name", "<&evil>")
        svg = flow_gantt_svg(results, weird)
        ET.fromstring(svg)  # must stay well-formed


class TestAscii:
    def test_sparkline_shape(self):
        line = sparkline([0, 1, 2, 3, 4, 5], width=6)
        assert len(line) == 6
        assert line[0] == " " and line[-1] == "@"

    def test_sparkline_downsamples(self):
        line = sparkline(list(range(1000)), width=40)
        assert len(line) == 40

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_heatmap_labels(self):
        out = ascii_heatmap({"aa": [1, 2], "bbbb": [2, 1]}, width=10)
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("aa")
        assert all(len(l) == len(lines[0]) for l in lines)

    def test_window_breakdown_heatmap(self, run):
        _sc, results = run
        out = window_breakdown_heatmap(results)
        assert "transmit" in out and "ack" in out

    def test_window_breakdown_empty(self):
        from repro.metrics import SimResults
        assert "no windows" in window_breakdown_heatmap(SimResults("e", "s", 0))
