"""The API-doc generator must keep working as the public surface moves."""

import importlib.util
import os
import subprocess
import sys

import pytest

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def test_generator_runs_and_covers_public_modules(tmp_path):
    result = subprocess.run(
        [sys.executable, os.path.join(ROOT, "tools", "gen_api_docs.py")],
        capture_output=True, text=True, timeout=120,
    )
    assert result.returncode == 0, result.stderr
    path = os.path.join(ROOT, "docs", "API.md")
    with open(path) as fh:
        text = fh.read()
    for section in ("## `repro`", "## `repro.core`", "## `repro.cluster`",
                    "## `repro.machine`", "## `repro.partition`"):
        assert section in text
    # Key public entry points documented.
    for name in ("run_dons", "run_baseline", "DonsManager", "make_scenario",
                 "mbc_bisect", "wasserstein_1d"):
        assert name in text, f"{name} missing from API.md"


def test_all_exports_resolve():
    """Every name in every __all__ must actually exist (release hygiene)."""
    import repro
    packages = [
        "repro", "repro.topology", "repro.traffic", "repro.routing",
        "repro.protocols", "repro.schedulers", "repro.des", "repro.core",
        "repro.cts", "repro.cluster", "repro.partition", "repro.apa",
        "repro.machine", "repro.metrics", "repro.viz", "repro.bench",
    ]
    import importlib
    for name in packages:
        mod = importlib.import_module(name)
        for export in getattr(mod, "__all__", []):
            assert hasattr(mod, export), f"{name}.{export} dangling"
