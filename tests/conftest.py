"""Shared fixtures: small, fast scenarios reused across the suite,
plus a teardown guard against leaked cluster worker processes."""

from __future__ import annotations

import multiprocessing

import pytest

from repro.scenario import Scenario, make_scenario
from repro.topology import dumbbell, fattree
from repro.traffic import Flow, Transport
from repro.units import GBPS, us

#: Seconds to wait for a leaked agent worker to die before escalating.
_REAP_TIMEOUT_S = 5.0


@pytest.fixture(autouse=True)
def reap_leaked_agent_workers():
    """Fail fast — and clean up — if a test leaks ProcessTransport workers
    or shared-memory segments.

    Every cluster worker process is named ``dons-agent-<id>`` by the
    transport, and every shared segment the shm transport creates starts
    with :data:`repro.cluster.shm.SEGMENT_PREFIX`.  A test that aborts
    mid-run (assertion failure, raised exception, fault-injection path
    gone wrong) can strand both: workers parked on their command queues,
    segments pinned in ``/dev/shm``.  This fixture terminates and joins
    surviving workers and unlinks leftover segments after each test,
    then fails the test that leaked them so the leak is fixed at the
    source rather than masked.
    """
    yield
    from repro.cluster import shm as shm_mod
    leaked = [
        p for p in multiprocessing.active_children()
        if p.name.startswith("dons-agent-")
    ]
    names = [p.name for p in leaked]
    for proc in leaked:
        proc.terminate()
    deadline = _REAP_TIMEOUT_S
    for proc in leaked:
        proc.join(timeout=deadline)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=deadline)
    # Workers must be dead before reaping segments, else a live worker
    # could recreate what we just unlinked.
    reaped = shm_mod.reap_orphans()
    if not leaked and not reaped:
        return
    problems = []
    if names:
        problems.append(
            f"worker processes: {', '.join(sorted(names))} (terminated)")
    if reaped:
        problems.append(
            f"shared-memory segments: {', '.join(reaped)} (unlinked)")
    pytest.fail("test leaked " + "; ".join(problems))


@pytest.fixture
def small_dumbbell():
    """4-pair dumbbell at 10 Gbps."""
    return dumbbell(4, edge_rate_bps=10 * GBPS, bottleneck_rate_bps=10 * GBPS)


@pytest.fixture
def dumbbell_scenario(small_dumbbell) -> Scenario:
    """Four 150 KB DCTCP flows across the dumbbell."""
    flows = [
        Flow(i, i, 4 + i, 150_000, 0, Transport.DCTCP) for i in range(4)
    ]
    return make_scenario(small_dumbbell, flows)


@pytest.fixture
def fattree4():
    """FatTree4 at 10 Gbps (16 hosts, 20 switches)."""
    return fattree(4, rate_bps=10 * GBPS, delay_ps=us(1))


@pytest.fixture
def fattree4_scenario(fattree4) -> Scenario:
    """Mixed DCTCP/UDP flows with staggered starts on FatTree4."""
    hosts = fattree4.hosts
    flows = []
    for i in range(10):
        transport = Transport.DCTCP if i % 3 else Transport.UDP
        flows.append(
            Flow(i, hosts[i % 16], hosts[(i * 7 + 3) % 16],
                 30_000 + 999 * i, i * us(2), transport)
        )
    return make_scenario(fattree4, flows)
