"""Shared fixtures: small, fast scenarios reused across the suite,
plus a teardown guard against leaked cluster worker processes."""

from __future__ import annotations

import multiprocessing

import pytest

from repro.scenario import Scenario, make_scenario
from repro.topology import dumbbell, fattree
from repro.traffic import Flow, Transport
from repro.units import GBPS, us

#: Seconds to wait for a leaked agent worker to die before escalating.
_REAP_TIMEOUT_S = 5.0


@pytest.fixture(autouse=True)
def reap_leaked_agent_workers():
    """Fail fast — and clean up — if a test leaks ProcessTransport workers.

    Every cluster worker process is named ``dons-agent-<id>`` by the
    transport.  A test that aborts mid-run (assertion failure, raised
    exception, fault-injection path gone wrong) can strand them parked
    on their command queues; later tests then hang or inherit the
    orphans.  This fixture terminates and joins any survivors after each
    test, then fails the test that leaked them so the leak is fixed at
    the source rather than masked.
    """
    yield
    leaked = [
        p for p in multiprocessing.active_children()
        if p.name.startswith("dons-agent-")
    ]
    if not leaked:
        return
    names = [p.name for p in leaked]
    for proc in leaked:
        proc.terminate()
    deadline = _REAP_TIMEOUT_S
    for proc in leaked:
        proc.join(timeout=deadline)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=deadline)
    pytest.fail(
        f"test leaked cluster worker processes: {', '.join(sorted(names))} "
        f"(terminated by the reaper fixture)"
    )


@pytest.fixture
def small_dumbbell():
    """4-pair dumbbell at 10 Gbps."""
    return dumbbell(4, edge_rate_bps=10 * GBPS, bottleneck_rate_bps=10 * GBPS)


@pytest.fixture
def dumbbell_scenario(small_dumbbell) -> Scenario:
    """Four 150 KB DCTCP flows across the dumbbell."""
    flows = [
        Flow(i, i, 4 + i, 150_000, 0, Transport.DCTCP) for i in range(4)
    ]
    return make_scenario(small_dumbbell, flows)


@pytest.fixture
def fattree4():
    """FatTree4 at 10 Gbps (16 hosts, 20 switches)."""
    return fattree(4, rate_bps=10 * GBPS, delay_ps=us(1))


@pytest.fixture
def fattree4_scenario(fattree4) -> Scenario:
    """Mixed DCTCP/UDP flows with staggered starts on FatTree4."""
    hosts = fattree4.hosts
    flows = []
    for i in range(10):
        transport = Transport.DCTCP if i % 3 else Transport.UDP
        flows.append(
            Flow(i, hosts[i % 16], hosts[(i * 7 + 3) % 16],
                 30_000 + 999 * i, i * us(2), transport)
        )
    return make_scenario(fattree4, flows)
