"""Shared fixtures: small, fast scenarios reused across the suite."""

from __future__ import annotations

import pytest

from repro.scenario import Scenario, make_scenario
from repro.topology import dumbbell, fattree
from repro.traffic import Flow, Transport
from repro.units import GBPS, us


@pytest.fixture
def small_dumbbell():
    """4-pair dumbbell at 10 Gbps."""
    return dumbbell(4, edge_rate_bps=10 * GBPS, bottleneck_rate_bps=10 * GBPS)


@pytest.fixture
def dumbbell_scenario(small_dumbbell) -> Scenario:
    """Four 150 KB DCTCP flows across the dumbbell."""
    flows = [
        Flow(i, i, 4 + i, 150_000, 0, Transport.DCTCP) for i in range(4)
    ]
    return make_scenario(small_dumbbell, flows)


@pytest.fixture
def fattree4():
    """FatTree4 at 10 Gbps (16 hosts, 20 switches)."""
    return fattree(4, rate_bps=10 * GBPS, delay_ps=us(1))


@pytest.fixture
def fattree4_scenario(fattree4) -> Scenario:
    """Mixed DCTCP/UDP flows with staggered starts on FatTree4."""
    hosts = fattree4.hosts
    flows = []
    for i in range(10):
        transport = Transport.DCTCP if i % 3 else Transport.UDP
        flows.append(
            Flow(i, hosts[i % 16], hosts[(i * 7 + 3) % 16],
                 30_000 + 999 * i, i * us(2), transport)
        )
    return make_scenario(fattree4, flows)
