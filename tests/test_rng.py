"""Deterministic RNG utilities and the ECMP hash."""

from repro.rng import ecmp_hash, make_rng, substream


def test_make_rng_reproducible():
    a = make_rng(7).integers(0, 1 << 30, size=16)
    b = make_rng(7).integers(0, 1 << 30, size=16)
    assert (a == b).all()


def test_substreams_independent():
    a = substream(7, 1).integers(0, 1 << 30, size=16)
    b = substream(7, 2).integers(0, 1 << 30, size=16)
    assert (a != b).any()


def test_ecmp_hash_deterministic():
    assert ecmp_hash(1, 2, 3) == ecmp_hash(1, 2, 3)


def test_ecmp_hash_sensitive_to_every_argument():
    base = ecmp_hash(1, 2, 3)
    assert ecmp_hash(2, 2, 3) != base
    assert ecmp_hash(1, 3, 3) != base
    assert ecmp_hash(1, 2, 4) != base


def test_ecmp_hash_spreads_uniformly():
    counts = [0] * 4
    for flow in range(4000):
        counts[ecmp_hash(flow, 99, 5) % 4] += 1
    # each bucket within 15% of the mean
    assert all(abs(c - 1000) < 150 for c in counts), counts


def test_ecmp_hash_nonnegative_64bit():
    for v in (0, 1, 2**63, 2**64 - 1):
        h = ecmp_hash(v)
        assert 0 <= h < 2**64
