"""Columnar arrival engine: batch/scalar equivalence, chunk-invariant
determinism, exact per-class accounting, degenerate mixes, round trips."""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.scenario import make_scenario
from repro.scenario_io import scenario_from_json, scenario_to_json
from repro.topology import dumbbell
from repro.traffic import Flow, Transport
from repro.traffic.arrivals import (
    ARRIVAL_KINDS, DEFAULT_BATCH, ArrivalProcess, FlowColumns,
    INTERARRIVAL_CDFS, synthesize,
)
from repro.units import GBPS, PS_PER_S, us

HOSTS = tuple(range(8))
HORIZON = us(200)


@st.composite
def processes(draw):
    """A short list of valid arrival processes over a shared host set."""
    out = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        kind = draw(st.sampled_from(ARRIVAL_KINDS))
        classes = draw(st.integers(min_value=1, max_value=3))
        mix = tuple(draw(st.floats(min_value=0.05, max_value=1.0))
                    for _ in range(classes))
        kw = dict(
            kind=kind, src_hosts=HOSTS, dst_hosts=HOSTS,
            horizon_ps=HORIZON,
            size_bytes=draw(st.integers(min_value=200, max_value=90_000)),
            transport=draw(st.sampled_from(
                [Transport.DCTCP, Transport.RENO, Transport.UDP])),
            priority_mix=mix,
            src_alpha=draw(st.sampled_from([0.0, 0.9, 1.4])),
            dst_alpha=draw(st.sampled_from([0.0, 1.1])),
            max_flows=draw(st.one_of(
                st.none(), st.integers(min_value=1, max_value=60))),
            start_ps=draw(st.sampled_from([0, us(3)])),
        )
        rate = draw(st.floats(min_value=0.2, max_value=4.0)) \
            * 200.0 * PS_PER_S / HORIZON
        if kind == "poisson":
            kw["rate_per_s"] = rate
        elif kind == "onoff":
            kw.update(rate_per_s=2 * rate, on_ps=HORIZON // 6,
                      off_ps=HORIZON // draw(st.sampled_from([3, 6, 12])))
        elif kind == "periodic":
            kw["period_ps"] = draw(st.sampled_from(
                [HORIZON // 200, HORIZON // 37, HORIZON // 5]))
        else:
            kw["inter_cdf"] = draw(st.sampled_from(
                sorted(INTERARRIVAL_CDFS)))
        out.append(ArrivalProcess(**kw))
    return out


class TestSynthesis:
    @given(procs=processes(), seed=st.integers(min_value=0, max_value=2**32))
    @settings(deadline=None, max_examples=30)
    def test_batch_vs_scalar_equivalence(self, procs, seed):
        """The batch iterator, scalar iterator, indexing, and raw columns
        all describe the same flows."""
        cols = synthesize(procs, seed, batch_size=7)
        scalar = list(cols)
        assert len(scalar) == len(cols)
        raw = cols.columns()
        rebuilt = {k: [] for k in raw}
        for s, batch in cols.iter_batches():
            assert s % 7 == 0
            for k in rebuilt:
                rebuilt[k].append(batch[k])
        for k, chunks in rebuilt.items():
            assert np.concatenate(chunks).tolist() == raw[k].tolist()
        for i, f in enumerate(scalar):
            assert isinstance(f, Flow)
            assert f.flow_id == i
            assert (f.src, f.dst, f.size_bytes, f.start_ps, f.priority) == \
                (int(raw["src"][i]), int(raw["dst"][i]),
                 int(raw["size_bytes"][i]), int(raw["start_ps"][i]),
                 int(raw["priority"][i]))
            assert int(f.transport) == int(raw["transport"][i])
            g = cols[i]
            assert (g.src, g.dst, g.size_bytes, g.start_ps) == \
                (f.src, f.dst, f.size_bytes, f.start_ps)

    @given(procs=processes(), seed=st.integers(min_value=0, max_value=2**32))
    @settings(deadline=None, max_examples=20)
    def test_seed_determinism_across_chunk_sizes(self, procs, seed):
        """The synthesis chunk is a performance knob, never a semantic
        one: any chunk size yields bit-identical columns."""
        ref = synthesize(procs, seed, chunk=8192).columns()
        for chunk in (1, 3, 61, 1024):
            got = synthesize(procs, seed, chunk=chunk).columns()
            for k in ref:
                assert got[k].tolist() == ref[k].tolist(), (k, chunk)
        again = synthesize(procs, seed, chunk=8192).columns()
        assert all(again[k].tolist() == ref[k].tolist() for k in ref)

    @given(seed=st.integers(min_value=0, max_value=2**32),
           caps=st.lists(st.integers(min_value=1, max_value=40),
                         min_size=1, max_size=3))
    @settings(deadline=None, max_examples=20)
    def test_exact_per_class_rate_accounting(self, seed, caps):
        """One-hot class mixes with binding flow caps: class_counts()
        must hit each process's cap exactly — arrivals are neither lost
        nor double-counted across the merge."""
        horizon_s = HORIZON / PS_PER_S
        procs = [
            ArrivalProcess(
                kind="poisson", src_hosts=HOSTS, dst_hosts=HOSTS,
                horizon_ps=HORIZON, rate_per_s=20.0 * cap / horizon_s,
                size_bytes=1000,
                priority_mix=tuple(1.0 if c == i else 0.0
                                   for c in range(len(caps))),
                max_flows=cap)
            for i, cap in enumerate(caps)
        ]
        cols = synthesize(procs, seed)
        counts = cols.class_counts()
        assert len(cols) == sum(caps)
        for i, cap in enumerate(caps):
            assert counts[i] == cap
        # The merge is globally start-ordered with a deterministic tie
        # break, so starts are non-decreasing.
        starts = cols.columns()["start_ps"]
        assert (np.diff(starts) >= 0).all()

    def test_degenerate_mixes_rejected(self):
        base = dict(kind="poisson", src_hosts=HOSTS, dst_hosts=HOSTS,
                    horizon_ps=HORIZON, rate_per_s=1e6, size_bytes=100)
        with pytest.raises(ConfigError):
            ArrivalProcess(priority_mix=(), **base)
        with pytest.raises(ConfigError):
            ArrivalProcess(priority_mix=(0.0, 0.0), **base)
        with pytest.raises(ConfigError):
            ArrivalProcess(priority_mix=(0.5, -0.1), **base)
        with pytest.raises(ConfigError):  # no possible dst != src
            ArrivalProcess(kind="poisson", src_hosts=(3,), dst_hosts=(3,),
                           horizon_ps=HORIZON, rate_per_s=1e6,
                           size_bytes=100)
        with pytest.raises(ConfigError):  # empty process list
            synthesize([], 1)
        with pytest.raises(ConfigError):  # rate so low nothing arrives
            synthesize([ArrivalProcess(
                kind="poisson", src_hosts=HOSTS, dst_hosts=HOSTS,
                horizon_ps=HORIZON, rate_per_s=1e-6,
                size_bytes=100)], 1)

    def test_process_round_trip(self):
        proc = ArrivalProcess(
            kind="onoff", src_hosts=HOSTS, dst_hosts=HOSTS[:4],
            horizon_ps=HORIZON, rate_per_s=2e6, on_ps=us(10), off_ps=us(30),
            size_bytes=777, size_dist="tiny", transport=Transport.UDP,
            priority_mix=(0.25, 0.75), src_alpha=1.2, max_flows=9,
            label="rt")
        assert ArrivalProcess.from_dict(proc.to_dict()) == proc


class TestScenarioRoundTrip:
    def _cols(self, seed=5):
        return synthesize([ArrivalProcess(
            kind="poisson", src_hosts=HOSTS[:4], dst_hosts=HOSTS[:4],
            horizon_ps=HORIZON, rate_per_s=3e5, size_bytes=40_000,
            priority_mix=(0.5, 0.5), max_flows=20)], seed, batch_size=6)

    def test_scenario_io_round_trip_keeps_columns(self):
        topo = dumbbell(2, edge_rate_bps=10 * GBPS)
        sc = make_scenario(topo, self._cols(), num_classes=2)
        back = scenario_from_json(scenario_to_json(sc))
        assert isinstance(back.flows, FlowColumns)
        assert back.flows.batch_size == 6
        a, b = sc.flows.columns(), back.flows.columns()
        for k in a:
            assert a[k].tolist() == b[k].tolist(), k

    def test_pickle_round_trip_drops_cache(self):
        cols = self._cols()
        _ = cols[0]  # populate the facade cache
        assert cols.cached_flow_count() == 1
        back = pickle.loads(pickle.dumps(cols))
        assert back.cached_flow_count() == 0
        assert back.columns()["start_ps"].tolist() == \
            cols.columns()["start_ps"].tolist()

    def test_facade_cache_stays_bounded(self):
        cols = self._cols()
        for i in range(len(cols)):
            _ = cols[i]
            assert cols.cached_flow_count() <= cols.batch_size
