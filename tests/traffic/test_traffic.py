"""Traffic: flow validation, size distributions, workload generators."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.rng import make_rng
from repro.traffic import (
    FB_CACHE, Flow, TINY, Transport, WEB_SEARCH, fixed_flows,
    full_mesh_dynamic, incast, permutation, validate_flows,
)
from repro.traffic.distributions import EmpiricalSize
from repro.traffic.generators import zipf_weights
from repro.units import GBPS, ms


class TestFlow:
    def test_rejects_self_flow(self):
        with pytest.raises(ConfigError):
            Flow(0, 1, 1, 100, 0)

    def test_rejects_bad_size_and_time(self):
        with pytest.raises(ConfigError):
            Flow(0, 1, 2, 0, 0)
        with pytest.raises(ConfigError):
            Flow(0, 1, 2, 100, -5)

    def test_validate_flows_checks_hosts_and_ids(self):
        flows = [Flow(0, 1, 2, 100, 0), Flow(1, 2, 1, 100, 0)]
        assert validate_flows(flows, [1, 2]) == flows
        with pytest.raises(ConfigError):
            validate_flows(flows, [1])  # host 2 missing
        with pytest.raises(ConfigError):
            validate_flows([Flow(0, 1, 2, 1, 0), Flow(0, 2, 1, 1, 0)], [1, 2])


class TestDistributions:
    @pytest.mark.parametrize("dist", [WEB_SEARCH, FB_CACHE, TINY])
    def test_samples_within_support(self, dist):
        rng = make_rng(1)
        s = dist.sample(rng, 2000)
        assert s.min() >= 1
        assert s.max() <= dist._sizes[-1]

    def test_sample_mean_close_to_analytic(self):
        rng = make_rng(2)
        s = WEB_SEARCH.sample(rng, 60_000)
        assert abs(s.mean() - WEB_SEARCH.mean()) / WEB_SEARCH.mean() < 0.10

    def test_web_search_heavier_than_fb(self):
        assert WEB_SEARCH.mean() > 10 * FB_CACHE.mean()

    def test_invalid_cdfs_rejected(self):
        with pytest.raises(ConfigError):
            EmpiricalSize("bad", [])
        with pytest.raises(ConfigError):
            EmpiricalSize("bad", [(10, 0.5), (5, 1.0)])
        with pytest.raises(ConfigError):
            EmpiricalSize("bad", [(10, 0.5), (20, 0.4)])
        with pytest.raises(ConfigError):
            EmpiricalSize("bad", [(10, 0.5)])


class TestGenerators:
    HOSTS = list(range(8))

    def test_full_mesh_deterministic(self):
        a = full_mesh_dynamic(self.HOSTS, ms(1), load=0.3,
                              host_rate_bps=10 * GBPS, sizes=TINY, seed=4)
        b = full_mesh_dynamic(self.HOSTS, ms(1), load=0.3,
                              host_rate_bps=10 * GBPS, sizes=TINY, seed=4)
        assert a == b

    def test_full_mesh_load_scales_arrivals(self):
        low = full_mesh_dynamic(self.HOSTS, ms(1), load=0.1,
                                host_rate_bps=10 * GBPS, sizes=TINY, seed=4)
        high = full_mesh_dynamic(self.HOSTS, ms(1), load=0.6,
                                 host_rate_bps=10 * GBPS, sizes=TINY, seed=4)
        assert len(high) > 3 * len(low)

    def test_full_mesh_endpoints_valid(self):
        flows = full_mesh_dynamic(self.HOSTS, ms(1), load=0.5,
                                  host_rate_bps=10 * GBPS, sizes=TINY, seed=4)
        assert flows, "no flows generated"
        for f in flows:
            assert f.src in self.HOSTS and f.dst in self.HOSTS
            assert f.src != f.dst
            assert 0 <= f.start_ps < ms(1)

    def test_full_mesh_max_flows_cap(self):
        flows = full_mesh_dynamic(self.HOSTS, ms(5), load=1.0,
                                  host_rate_bps=10 * GBPS, sizes=TINY,
                                  seed=4, max_flows=17)
        assert len(flows) == 17

    def test_full_mesh_skew(self):
        w = zipf_weights(len(self.HOSTS), alpha=1.5)
        flows = full_mesh_dynamic(self.HOSTS, ms(5), load=1.0,
                                  host_rate_bps=10 * GBPS, sizes=TINY,
                                  seed=4, max_flows=800, host_weights=w)
        counts = np.zeros(len(self.HOSTS))
        for f in flows:
            counts[f.src] += 1
            counts[f.dst] += 1
        assert counts[0] > 3 * counts[-1], counts

    def test_zipf_weights_normalized_and_decreasing(self):
        w = zipf_weights(10, 1.0)
        assert abs(w.sum() - 1.0) < 1e-12
        assert all(a > b for a, b in zip(w, w[1:]))

    def test_fixed_flows(self):
        flows = fixed_flows(self.HOSTS, 64, 1_500_000, seed=1)
        assert len(flows) == 64
        assert all(f.size_bytes == 1_500_000 for f in flows)

    def test_permutation_is_permutation(self):
        flows = permutation(self.HOSTS, 10_000, seed=9)
        assert sorted(f.src for f in flows) == self.HOSTS
        assert sorted(f.dst for f in flows) == self.HOSTS
        assert all(f.src != f.dst for f in flows)

    def test_incast(self):
        flows = incast(7, [0, 1, 2, 3], 50_000, stagger_ps=10)
        assert all(f.dst == 7 for f in flows)
        assert [f.start_ps for f in flows] == [0, 10, 20, 30]
        with pytest.raises(ConfigError):
            incast(3, [1, 2, 3], 100)


class TestGeneratorCanonicalOrder:
    """Generators must depend on the host *set*, not container order —
    and their exact output is pinned so an accidental reordering (or a
    silent RNG-consumption change) shows up as a digest mismatch, not
    as a mystery divergence three layers up in the conformance suite."""

    HOSTS = list(range(10, 22))

    @staticmethod
    def _digest(flows):
        import hashlib
        blob = repr([(f.flow_id, f.src, f.dst, f.size_bytes, f.start_ps,
                      int(f.transport), f.priority) for f in flows]).encode()
        return hashlib.sha256(blob).hexdigest()[:16]

    def _mesh(self, hosts, weights=None):
        return full_mesh_dynamic(hosts, duration_ps=200_000_000, load=0.4,
                                 host_rate_bps=10 * GBPS, sizes=TINY,
                                 seed=7, max_flows=40, host_weights=weights)

    def test_full_mesh_digest_pinned(self):
        flows = self._mesh(self.HOSTS)
        assert len(flows) == 40
        assert self._digest(flows) == "99da2a3569ee2608"

    def test_full_mesh_weighted_digest_pinned(self):
        w = zipf_weights(len(self.HOSTS), 1.1)
        assert self._digest(self._mesh(self.HOSTS, w)) == "53a22e11a9ccb4f4"

    def test_incast_digest_pinned(self):
        flows = incast(5, list(range(6, 14)), size_bytes=30_000,
                       stagger_ps=1_000_000)
        assert self._digest(flows) == "7cddef0f946d3c72"

    def test_full_mesh_ignores_container_order(self):
        ref = self._digest(self._mesh(self.HOSTS))
        assert self._digest(self._mesh(list(reversed(self.HOSTS)))) == ref
        assert self._digest(self._mesh(tuple(self.HOSTS))) == ref

    def test_full_mesh_weights_stay_paired_with_hosts(self):
        w = zipf_weights(len(self.HOSTS), 1.1)
        ref = self._digest(self._mesh(self.HOSTS, w))
        # Reversing hosts AND weights together is the same host->weight
        # mapping, so the output must be identical.
        assert self._digest(
            self._mesh(list(reversed(self.HOSTS)), w[::-1])) == ref
        # Reversing only the hosts changes the mapping — and the flows.
        assert self._digest(
            self._mesh(list(reversed(self.HOSTS)), w)) != ref

    def test_incast_ignores_container_order(self):
        ref = self._digest(incast(5, list(range(6, 14)), size_bytes=30_000,
                                  stagger_ps=1_000_000))
        assert self._digest(incast(5, set(range(6, 14)), size_bytes=30_000,
                                   stagger_ps=1_000_000)) == ref
        assert self._digest(incast(5, list(range(13, 5, -1)),
                                   size_bytes=30_000,
                                   stagger_ps=1_000_000)) == ref
