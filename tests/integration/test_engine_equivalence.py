"""The paper's fidelity claim, asserted literally (Fig. 10 / Theorem 2):

the DOD engine and the OOD baseline produce byte-identical event traces,
timestamp for timestamp, across topologies, transports, schedulers, AQMs
and loss regimes.
"""

import pytest

from repro.core.engine import run_dons
from repro.des import run_baseline
from repro.metrics import TraceLevel
from repro.protocols import AqmConfig, AqmKind
from repro.scenario import make_scenario
from repro.schedulers import SchedulerKind
from repro.topology import Topology, abilene, dumbbell, fattree
from repro.traffic import Flow, Transport, full_mesh_dynamic, TINY
from repro.units import GBPS, ms, us


def assert_equivalent(scenario, workers=1):
    a = run_baseline(scenario, TraceLevel.FULL)
    b = run_dons(scenario, TraceLevel.FULL, workers=workers)
    assert a.trace.sorted_entries() == b.trace.sorted_entries()
    assert a.rtt_samples == b.rtt_samples
    assert a.fcts_ps() == b.fcts_ps()
    assert a.drops == b.drops
    assert a.marks == b.marks
    assert a.events.total == b.events.total
    return a, b


def test_dumbbell_dctcp(dumbbell_scenario):
    a, _ = assert_equivalent(dumbbell_scenario)
    assert a.completed() == 4


def test_fattree_ecmp_mixed_transports(fattree4_scenario):
    assert_equivalent(fattree4_scenario)


def test_drops_and_retransmissions():
    topo = dumbbell(8, edge_rate_bps=10 * GBPS, bottleneck_rate_bps=1 * GBPS)
    flows = [Flow(i, i, 8 + i, 120_000, 0) for i in range(8)]
    sc = make_scenario(topo, flows, buffer_bytes=15_000)
    a, _ = assert_equivalent(sc)
    assert a.drops > 0, "loss regime not exercised"
    assert a.completed() == 8


@pytest.mark.parametrize("sched", [SchedulerKind.SP, SchedulerKind.RR,
                                   SchedulerKind.DRR])
def test_schedulers_with_priorities(sched):
    topo = dumbbell(6, edge_rate_bps=10 * GBPS, bottleneck_rate_bps=2 * GBPS)
    flows = [Flow(i, i, 6 + (i % 3), 60_000, 0, Transport.DCTCP,
                  priority=i % 3) for i in range(6)]
    sc = make_scenario(topo, flows, scheduler=sched, num_classes=3)
    assert_equivalent(sc)


def test_red_marking():
    topo = dumbbell(6, edge_rate_bps=10 * GBPS, bottleneck_rate_bps=2 * GBPS)
    flows = [Flow(i, i, 11 - i, 100_000, 0) for i in range(6)]
    sc = make_scenario(topo, flows, aqm=AqmConfig(kind=AqmKind.RED))
    a, _ = assert_equivalent(sc)
    assert a.marks > 0, "RED never marked"


def test_wan_full_mesh():
    topo = abilene()
    flows = full_mesh_dynamic(topo.hosts, ms(1), load=0.3,
                              host_rate_bps=10 * GBPS, sizes=TINY,
                              seed=7, max_flows=60)
    assert_equivalent(make_scenario(topo, flows))


def test_heterogeneous_link_delays():
    topo = Topology("hetero")
    hosts = [topo.add_host() for _ in range(4)]
    s = [topo.add_switch() for _ in range(3)]
    topo.add_link(hosts[0], s[0], 10 * GBPS, us(1))
    topo.add_link(hosts[1], s[0], 10 * GBPS, us(4))
    topo.add_link(hosts[2], s[2], 10 * GBPS, us(2))
    topo.add_link(hosts[3], s[2], 10 * GBPS, us(9))
    topo.add_link(s[0], s[1], 5 * GBPS, us(13))
    topo.add_link(s[1], s[2], 5 * GBPS, us(6))
    topo.freeze()
    flows = [Flow(0, hosts[0], hosts[2], 80_000, 0),
             Flow(1, hosts[1], hosts[3], 80_000, us(3)),
             Flow(2, hosts[3], hosts[0], 50_000, us(1), Transport.UDP)]
    assert_equivalent(make_scenario(topo, flows))


def test_multithreaded_dons_equivalent(fattree4_scenario):
    assert_equivalent(fattree4_scenario, workers=4)


@pytest.mark.parametrize("seed", [11, 23, 47])
def test_randomized_fattree_scenarios(seed):
    topo = fattree(4, rate_bps=10 * GBPS, delay_ps=us(1))
    flows = full_mesh_dynamic(topo.hosts, ms(0.4), load=0.5,
                              host_rate_bps=10 * GBPS, sizes=TINY,
                              seed=seed, max_flows=80)
    sc = make_scenario(topo, flows, buffer_bytes=60_000)
    assert_equivalent(sc)
