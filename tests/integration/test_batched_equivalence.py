"""Multi-window batching is observationally invisible.

``advance(max_windows=K)`` / ``REPRO_BATCH_WINDOWS=K`` may run up to K
lookahead windows per advance — including the fused drain-span fast
path on the NumPy backend and the barrier-free quiet spans on the
cluster — but the canonical trace must stay byte-identical to the
window-at-a-time run.  The argument is the LCC discipline itself (see
docs/ARCHITECTURE.md, "Why K-window batching is safe"); these tests are
the enforcement: K=1 vs K=8 digests across backends, worker counts and
both cluster transports, plus ``window_signature()`` stability across
backends and telemetry neutrality on the batched path.
"""

import pytest

from repro.cluster import DonsManager
from repro.core.engine import DodEngine, run_dons
from repro.des.partition_types import contiguous_partition
from repro.metrics import TraceLevel
from repro.partition import ClusterSpec
from repro.scenario import make_scenario
from repro.topology import dumbbell, fattree
from repro.traffic import Flow, TINY, Transport, fixed_flows, \
    full_mesh_dynamic
from repro.units import GBPS, ms, us


@pytest.fixture(scope="module")
def scenario():
    topo = fattree(4, rate_bps=10 * GBPS, delay_ps=us(1))
    flows = full_mesh_dynamic(topo.hosts, ms(0.5), load=0.4,
                              host_rate_bps=10 * GBPS, sizes=TINY,
                              seed=13, max_flows=40)
    return make_scenario(topo, flows, buffer_bytes=50_000)


@pytest.fixture(scope="module")
def drain_scenario():
    """One big flow through a 10:1 bottleneck: long FIFO drain tails
    with empty windows in between — the drain-span fast path's home."""
    topo = dumbbell(2, edge_rate_bps=10 * GBPS, bottleneck_rate_bps=GBPS,
                    delay_ps=us(1), bottleneck_delay_ps=us(1))
    flows = [Flow(0, topo.hosts[0], topo.hosts[2], 200_000, 0)]
    return make_scenario(topo, flows, buffer_bytes=1_000_000)


@pytest.fixture(scope="module")
def reference(scenario):
    return run_dons(scenario, TraceLevel.FULL, backend="python",
                    batch_windows=1)


@pytest.mark.parametrize("backend", ["python", "numpy"])
@pytest.mark.parametrize("workers", [1, 2])
def test_single_machine_k8_matches_k1(scenario, reference, backend, workers):
    if backend == "numpy":
        pytest.importorskip("numpy")
    run = run_dons(scenario, TraceLevel.FULL, backend=backend,
                   workers=workers, batch_windows=8)
    assert run.trace.digest() == reference.trace.digest()
    assert run.fcts_ps() == reference.fcts_ps()
    assert run.events.total == reference.events.total


def test_drain_span_path_is_byte_identical(drain_scenario):
    """The fused drain-span actually fires on this workload, and the
    merged multi-window port replay changes nothing observable."""
    pytest.importorskip("numpy")
    spans = []
    original = DodEngine._drain_span

    def spy(self, first, budget):
        n = original(self, first, budget)
        spans.append(n)
        return n

    ref = run_dons(drain_scenario, TraceLevel.FULL, backend="python",
                   batch_windows=1)
    DodEngine._drain_span = spy
    try:
        run = run_dons(drain_scenario, TraceLevel.FULL, backend="numpy",
                       batch_windows=8)
    finally:
        DodEngine._drain_span = original
    assert spans and max(spans) > 1, "drain-span fast path never batched"
    assert run.trace.digest() == ref.trace.digest()
    assert run.fcts_ps() == ref.fcts_ps()


@pytest.mark.parametrize("transport", ["local", "process"])
def test_cluster_k8_matches_k1(scenario, reference, transport):
    part = contiguous_partition(scenario.topology, 2)
    runs = {}
    for k in (1, 8):
        runs[k] = DonsManager(
            scenario, ClusterSpec.homogeneous(2), TraceLevel.FULL,
            transport=transport, batch_windows=k,
        ).run(partition=part)
    assert runs[8].results.trace.digest() == reference.trace.digest()
    assert runs[1].results.trace.digest() == runs[8].results.trace.digest()
    assert runs[1].results.fcts_ps() == runs[8].results.fcts_ps()


def test_cluster_quiet_spans_save_barriers():
    """On a WAN partition — where most traffic stays hops away from the
    boundary — the quiet-horizon batcher provably skips barrier rounds:
    fewer FINISH windows, identical trace."""
    from repro.topology import isp_wan
    topo = isp_wan(backbone_routers=4, provinces=2, provincial_routers=4,
                   metros_per_province=1, metro_routers=3, seed=2)
    flows = full_mesh_dynamic(topo.hosts, ms(0.5), load=0.5,
                              host_rate_bps=10 * GBPS, sizes=TINY,
                              seed=5, max_flows=12)
    sc = make_scenario(topo, flows)
    part = contiguous_partition(topo, 2)
    traffic = {}
    digests = {}
    for k in (1, 8):
        run = DonsManager(
            sc, ClusterSpec.homogeneous(2), TraceLevel.FULL,
            batch_windows=k,
        ).run(partition=part)
        traffic[k] = run.traffic.windows
        digests[k] = run.results.trace.digest()
    assert digests[1] == digests[8]
    assert traffic[8] < traffic[1], "no quiet span ever batched"


def test_window_signature_stable_across_backends(scenario):
    """The mid-run pending-state hash is backend-independent: advancing
    both backends in lockstep yields the same signature at every step."""
    pytest.importorskip("numpy")
    a = DodEngine(scenario, TraceLevel.NONE, backend="python",
                  batch_windows=1)
    b = DodEngine(scenario, TraceLevel.NONE, backend="numpy",
                  batch_windows=1)
    a.build()
    b.build()
    assert a.window_signature() == b.window_signature()
    for step in range(40):
        more_a = a.advance()
        more_b = b.advance()
        assert more_a == more_b
        assert a.window_signature() == b.window_signature(), f"step {step}"
        if not more_a:
            break
    a.finalize()
    b.finalize()


def test_window_signature_sensitive_to_pending_state():
    topo = dumbbell(2)
    flows = fixed_flows(topo.hosts, n_flows=4, size_bytes=40_000,
                        transport=Transport.DCTCP, seed=5)
    sc = make_scenario(topo, flows)
    a = DodEngine(sc, TraceLevel.NONE)
    a.build()
    before = a.window_signature()
    assert before == DodEngine.window_signature(a)  # deterministic
    a.advance()
    assert a.window_signature() != before


@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_batched_path_is_telemetry_neutral(scenario, reference, backend):
    """Digest identity with telemetry on/off *on the batched path* —
    the batch counters and histograms only observe, never perturb."""
    if backend == "numpy":
        pytest.importorskip("numpy")
    on = run_dons(scenario, TraceLevel.FULL, backend=backend,
                  batch_windows=8, telemetry=True)
    off = run_dons(scenario, TraceLevel.FULL, backend=backend,
                   batch_windows=8, telemetry=False)
    assert on.trace.digest() == off.trace.digest() == \
        reference.trace.digest()


def test_batch_counters_recorded(scenario):
    engine = DodEngine(scenario, TraceLevel.NONE, batch_windows=8,
                       telemetry=True)
    engine.run()
    counters = engine.bus.counters
    assert counters.get("engine.batch_windows", 0) > 0
    snap = engine.bus.metrics.snapshot()
    hist = snap["histograms"]["window.batch_size"]
    # one histogram sample per batched advance; samples sum to the
    # total windows the counter saw
    assert sum(hist["counts"]) > 0
    assert hist["sum"] == counters["engine.batch_windows"]
