"""Appendix A executed: live repartitioning preserves the trace.

The hardest correctness property in the repository: a cluster run that
*migrates node state between machines mid-simulation* must still produce
the single-machine trace, byte for byte.
"""

import pytest

from repro.cluster import DonsManager
from repro.cluster.manager import ClusterController
from repro.cluster.agent import AgentEngine
from repro.core.engine import run_dons
from repro.des.partition_types import contiguous_partition, random_partition
from repro.metrics import TraceLevel
from repro.partition import ClusterSpec
from repro.scenario import make_scenario
from repro.topology import fattree, isp_wan
from repro.traffic import Flow, full_mesh_dynamic, TINY
from repro.units import GBPS, ms, us


@pytest.fixture(scope="module")
def scenario():
    topo = fattree(4, rate_bps=10 * GBPS, delay_ps=us(1))
    flows = full_mesh_dynamic(topo.hosts, ms(0.5), load=0.5,
                              host_rate_bps=10 * GBPS, sizes=TINY,
                              seed=17, max_flows=60)
    return make_scenario(topo, flows, buffer_bytes=60_000)


@pytest.fixture(scope="module")
def reference(scenario):
    return run_dons(scenario, TraceLevel.FULL)


def run_with_schedule(scenario, first, schedule, machines):
    agents = [
        AgentEngine(a, scenario, first, TraceLevel.FULL)
        for a in range(machines)
    ]
    controller = ClusterController(agents, schedule=schedule)
    per_agent = controller.run()
    from repro.cluster.manager import merge_results
    return merge_results(per_agent, scenario.name), controller


@pytest.mark.parametrize("boundary_window", [1, 50, 200])
def test_single_migration_preserves_trace(scenario, reference,
                                          boundary_window):
    topo = scenario.topology
    first = contiguous_partition(topo, 3)
    second = random_partition(topo, 3, seed=9)
    merged, controller = run_with_schedule(
        scenario, first, [(boundary_window, second)], machines=3)
    assert len(controller.migrations) == 1
    stats = controller.migrations[0]
    assert stats.nodes_moved > 0
    assert (sorted(merged.trace.entries)
            == sorted(reference.trace.entries))
    assert merged.fcts_ps() == reference.fcts_ps()


def test_multiple_migrations_preserve_trace(scenario, reference):
    topo = scenario.topology
    parts = [contiguous_partition(topo, 3),
             random_partition(topo, 3, seed=1),
             random_partition(topo, 3, seed=2),
             contiguous_partition(topo, 3)]
    schedule = [(40, parts[1]), (120, parts[2]), (260, parts[3])]
    merged, controller = run_with_schedule(scenario, parts[0], schedule, 3)
    assert len(controller.migrations) == 3
    assert (sorted(merged.trace.entries)
            == sorted(reference.trace.entries))


def test_migration_moves_inflight_state(scenario):
    """A boundary in the thick of the traffic must move queued packets."""
    topo = scenario.topology
    first = contiguous_partition(topo, 3)
    second = random_partition(topo, 3, seed=9)
    _merged, controller = run_with_schedule(scenario, first,
                                            [(60, second)], 3)
    stats = controller.migrations[0]
    assert stats.calendar_entries_moved > 0
    assert stats.bytes_moved > 0


def test_run_dynamic_end_to_end():
    """Manager-level Appendix A: shifting hotspot, detected and executed."""
    topo = isp_wan(backbone_routers=8, provinces=2, provincial_routers=5,
                   metros_per_province=2, metro_routers=3,
                   servers_per_metro=2, seed=3)
    hosts = topo.hosts
    half = len(hosts) // 2
    f1 = full_mesh_dynamic(hosts[:half], ms(1), load=1.0,
                           host_rate_bps=10 * GBPS, sizes=TINY, seed=1,
                           max_flows=30)
    f2 = full_mesh_dynamic(hosts[half:], ms(1), load=1.0,
                           host_rate_bps=10 * GBPS, sizes=TINY, seed=2,
                           max_flows=30)
    flows = list(f1)
    for f in f2:
        flows.append(Flow(len(f1) + f.flow_id, f.src, f.dst, f.size_bytes,
                          f.start_ps + ms(1), f.transport))
    sc = make_scenario(topo, flows)
    reference = run_dons(sc, TraceLevel.FULL)

    mgr = DonsManager(sc, ClusterSpec.homogeneous(3), TraceLevel.FULL)
    run, migrations = mgr.run_dynamic(bin_ps=ms(1), threshold=0.2)
    assert (sorted(run.results.trace.entries)
            == sorted(reference.trace.entries))
    assert run.results.fcts_ps() == reference.fcts_ps()
    # The hotspot shift produced at least one real migration.
    assert migrations and migrations[0].nodes_moved > 0
