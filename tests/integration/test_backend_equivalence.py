"""Backend equivalence: the NumPy columnar engine is byte-identical.

The vectorized backend replaces the ECS storage and the four system
kernels wholesale, so its conformance gate is the strongest one the
repo has: identical canonical traces — same digests — as the Python
reference kernels, serial and multi-worker, and when hosting cluster
agents.  Everything here runs the *same scenario* through both
backends and diffs the byte-level observables.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.core.engine import DodEngine
from repro.metrics import TraceLevel
from repro.scenario import make_scenario
from repro.topology import dumbbell, fattree
from repro.traffic import Flow, Transport, fixed_flows
from repro.units import GBPS


def run_backend(scenario, backend, workers=1):
    engine = DodEngine(scenario, TraceLevel.FULL, workers=workers,
                       backend=backend)
    results = engine.run()
    return results, engine


def assert_backends_identical(scenario, workers=1):
    a, _ = run_backend(scenario, "python")
    b, eng = run_backend(scenario, "numpy", workers=workers)
    assert eng.backend == "numpy"
    assert a.trace.digest() == b.trace.digest()
    assert a.trace.sorted_entries() == b.trace.sorted_entries()
    assert a.fcts_ps() == b.fcts_ps()
    assert a.drops == b.drops and a.marks == b.marks
    assert a.events.total == b.events.total
    return a, b


def test_dumbbell_dctcp_serial(dumbbell_scenario):
    a, _ = assert_backends_identical(dumbbell_scenario)
    assert a.completed() == 4


def test_fattree_mixed_transports_mt2(fattree4_scenario):
    assert_backends_identical(fattree4_scenario, workers=2)


def test_loss_regime_with_retransmissions():
    topo = dumbbell(8, edge_rate_bps=10 * GBPS, bottleneck_rate_bps=1 * GBPS)
    flows = [Flow(i, i, 8 + i, 120_000, 0) for i in range(8)]
    sc = make_scenario(topo, flows, buffer_bytes=15_000)
    a, _ = assert_backends_identical(sc)
    assert a.drops > 0, "loss regime not exercised"


def test_udp_closed_form_schedule():
    """The vectorized UDP enqueue-time kernel vs the scalar recurrence."""
    topo = dumbbell(4)
    flows = fixed_flows(topo.hosts, n_flows=4, size_bytes=80_000,
                        transport=Transport.UDP, seed=3)
    assert_backends_identical(make_scenario(topo, flows))


def test_cluster_agents_on_numpy_backend(fattree4_scenario):
    """2 local-transport agents hosting NumPy-backed engines equal the
    single-machine Python engine, byte for byte."""
    from repro.cluster import DonsManager
    from repro.des.partition_types import contiguous_partition
    from repro.partition import ClusterSpec

    ref, _ = run_backend(fattree4_scenario, "python")
    partition = contiguous_partition(fattree4_scenario.topology, 2)
    mgr = DonsManager(fattree4_scenario, ClusterSpec.homogeneous(2),
                      TraceLevel.FULL, transport="local", backend="numpy")
    run = mgr.run(partition=partition)
    assert run.results.trace.digest() == ref.trace.digest()

    # The spec round-trips the backend through rebuild (fault recovery
    # and process transports reconstruct agents from their specs).
    from repro.cluster.agent import AgentSpec, spec_of
    spec = AgentSpec(0, fattree4_scenario, partition,
                     TraceLevel.NONE, 1, "numpy")
    agent = spec.make()
    assert agent.backend == "numpy"
    assert spec_of(agent).backend == "numpy"


def test_env_var_selects_default_backend(dumbbell_scenario, monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "numpy")
    eng = DodEngine(dumbbell_scenario)
    assert eng.backend == "numpy"
    monkeypatch.setenv("REPRO_BACKEND", "")
    assert DodEngine(dumbbell_scenario).backend == "python"
    # An explicit argument beats the environment.
    monkeypatch.setenv("REPRO_BACKEND", "numpy")
    assert DodEngine(dumbbell_scenario, backend="python").backend == "python"


def test_unknown_backend_raises(dumbbell_scenario):
    from repro.errors import ConfigError
    with pytest.raises(ConfigError):
        DodEngine(dumbbell_scenario, backend="fortran")
