"""Workload-family acceptance: the DiffServ WAN twin and the storage
replica-pipeline twin are byte-identical across {python, numpy} x
{serial, cluster-local-2, ffwd on/off} — and the columnar traffic path
never materializes more than one batch of Flow facades."""

import gc

import pytest

from repro.bench.workloads import (
    storage_scenario, wan_twin_scenario, wan_twin_smoke,
)
from repro.conformance.oracles import run_cluster, run_dod, run_ood
from repro.traffic import Flow

#: (label, runner) — every cell of the {backend} x {execution} matrix.
MATRIX = [
    ("ood", run_ood),
    ("python-serial", lambda sc: run_dod(sc, name="python-serial",
                                         backend="python")),
    ("numpy-serial", lambda sc: run_dod(sc, name="numpy-serial",
                                        backend="numpy")),
    ("python-ffwd", lambda sc: run_dod(sc, name="python-ffwd",
                                       backend="python", ffwd=True)),
    ("numpy-ffwd", lambda sc: run_dod(sc, name="numpy-ffwd",
                                      backend="numpy", ffwd=True)),
    ("python-cluster2", lambda sc: run_cluster(sc, "local", 2,
                                               "python-cluster2",
                                               backend="python")),
    ("numpy-cluster2", lambda sc: run_cluster(sc, "local", 2,
                                              "numpy-cluster2",
                                              backend="numpy")),
]


def _scenarios():
    return [
        ("wan-twin-sp", wan_twin_scenario(
            classes=3, max_flows=80, duration_ms=0.15, scheduler="sp",
            seed=41)),
        ("wan-twin-drr", wan_twin_scenario(
            which="geant", classes=2, max_flows=50, duration_ms=0.1,
            scheduler="drr", arrival="poisson", seed=42)),
        ("storage", storage_scenario(
            datanodes=6, blocks=16, duration_ms=0.25, seed=43)),
    ]


@pytest.mark.parametrize("name,scenario", _scenarios(),
                         ids=lambda v: v if isinstance(v, str) else "")
def test_workload_trace_identity_across_matrix(name, scenario):
    reference = None
    for label, runner in MATRIX:
        run = runner(scenario)
        assert run.n_entries > 0, label
        if reference is None:
            reference = run.trace
        else:
            assert run.trace == reference, f"{name}: {label} diverged"


def test_smoke_scenario_bounds_flow_materialization():
    """The 100k-flow smoke build must stream flows through the columnar
    path: at no point may more than one batch of Flow facades be alive
    (plus the handful other tests may have pinned elsewhere)."""
    gc.collect()
    ambient = sum(1 for o in gc.get_objects() if isinstance(o, Flow))
    sc = wan_twin_smoke(100_000)
    assert len(sc.flows) >= 100_000
    from repro.core.engine import DodEngine
    engine = DodEngine(sc, backend="numpy")
    del engine
    gc.collect()
    peak = sum(1 for o in gc.get_objects() if isinstance(o, Flow))
    assert peak - ambient <= sc.flows.batch_size + 16, (
        f"{peak - ambient} Flow objects survive a 100k-flow build; "
        "the columnar path must not materialize the flow set")
    # The bounded facade cache is the only sanctioned residue.
    assert sc.flows.cached_flow_count() <= sc.flows.batch_size
