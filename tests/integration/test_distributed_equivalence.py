"""Distributed DONS correctness: the cluster runtime reproduces the
single-machine trace for *every* partition (§4.2's conservative sync)."""

import pytest

from repro.cluster import DonsManager
from repro.core.engine import run_dons
from repro.des.partition_types import (
    contiguous_partition, random_partition,
)
from repro.metrics import TraceLevel
from repro.partition import ClusterSpec
from repro.scenario import make_scenario
from repro.topology import fattree, isp_wan
from repro.traffic import Flow, full_mesh_dynamic, TINY
from repro.units import GBPS, ms, us


@pytest.fixture(scope="module")
def scenario():
    topo = fattree(4, rate_bps=10 * GBPS, delay_ps=us(1))
    flows = full_mesh_dynamic(topo.hosts, ms(0.5), load=0.4,
                              host_rate_bps=10 * GBPS, sizes=TINY,
                              seed=13, max_flows=60)
    return make_scenario(topo, flows, buffer_bytes=50_000)


@pytest.fixture(scope="module")
def reference(scenario):
    return run_dons(scenario, TraceLevel.FULL)


@pytest.mark.parametrize("machines,seed", [(2, 1), (3, 9), (4, 2), (6, 5)])
def test_random_partitions_equivalent(scenario, reference, machines, seed):
    part = random_partition(scenario.topology, machines, seed)
    run = DonsManager(scenario, ClusterSpec.homogeneous(machines),
                      TraceLevel.FULL).run(partition=part)
    assert (sorted(run.results.trace.entries)
            == sorted(reference.trace.entries))
    assert run.results.fcts_ps() == reference.fcts_ps()
    assert run.results.rtt_samples == reference.rtt_samples


def test_planned_partition_equivalent(scenario, reference):
    run = DonsManager(scenario, ClusterSpec.homogeneous(4),
                      TraceLevel.FULL).run()
    assert (sorted(run.results.trace.entries)
            == sorted(reference.trace.entries))


def test_planned_partition_moves_less_traffic(scenario):
    cluster = ClusterSpec.homogeneous(4)
    planned = DonsManager(scenario, cluster).run()
    rand = DonsManager(scenario, cluster).run(
        partition=random_partition(scenario.topology, 4, 3))
    assert planned.traffic.rpc_bytes < rand.traffic.rpc_bytes


def test_wan_distributed_equivalence():
    topo = isp_wan(backbone_routers=10, provinces=3, provincial_routers=6,
                   metros_per_province=2, metro_routers=4, seed=2)
    flows = full_mesh_dynamic(topo.hosts, ms(1), load=0.5,
                              host_rate_bps=10 * GBPS, sizes=TINY,
                              seed=5, max_flows=50)
    sc = make_scenario(topo, flows)
    ref = run_dons(sc, TraceLevel.FULL)
    run = DonsManager(sc, ClusterSpec.homogeneous(3), TraceLevel.FULL).run(
        partition=contiguous_partition(topo, 3))
    assert sorted(run.results.trace.entries) == sorted(ref.trace.entries)
