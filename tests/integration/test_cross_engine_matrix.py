"""The full engine matrix on one scenario: sequential OOD, parallel OOD,
single-machine DONS (1 and 4 workers), distributed DONS — five executions,
one trace."""

import pytest

from repro.cluster import DonsManager
from repro.core.engine import run_dons
from repro.des import ParallelOodSimulator, random_partition, run_baseline
from repro.metrics import TraceLevel
from repro.partition import ClusterSpec
from repro.scenario import make_scenario
from repro.topology import fattree
from repro.traffic import full_mesh_dynamic, TINY
from repro.units import GBPS, ms, us


def test_five_engines_one_trace():
    topo = fattree(4, rate_bps=10 * GBPS, delay_ps=us(1))
    flows = full_mesh_dynamic(topo.hosts, ms(0.4), load=0.5,
                              host_rate_bps=10 * GBPS, sizes=TINY,
                              seed=31, max_flows=50)
    sc = make_scenario(topo, flows, buffer_bytes=60_000)

    traces = {}
    traces["ood"] = run_baseline(sc, TraceLevel.FULL).trace
    psim = ParallelOodSimulator(sc, random_partition(topo, 3, 4),
                                TraceLevel.FULL)
    traces["ood-parallel"] = psim.run().trace
    traces["dons"] = run_dons(sc, TraceLevel.FULL).trace
    traces["dons-mt"] = run_dons(sc, TraceLevel.FULL, workers=4).trace
    traces["dons-cluster"] = DonsManager(
        sc, ClusterSpec.homogeneous(3), TraceLevel.FULL
    ).run().results.trace

    reference = sorted(traces["ood"].entries)
    assert len(reference) > 1000
    for name, trace in traces.items():
        assert sorted(trace.entries) == reference, f"{name} diverged"
    digests = {t.digest() for t in traces.values()}
    assert len(digests) == 1
