"""The live observability plane must be observationally invisible.

Mirror of test_telemetry_neutrality.py for PR 10's acceptance bar:
``trace_digest()`` is byte-identical with the live plane (NDJSON
sampler + OpenMetrics endpoint + watchdog) attached vs absent, on both
ECS backends, serial and cluster-process-2 — the sampler only ever
*reads* engine state between windows.
"""

import io

import pytest

from repro.core.engine import DodEngine, run_dons
from repro.core.runner import EngineRunner
from repro.des.partition_types import contiguous_partition
from repro.metrics import TraceLevel
from repro.metrics.live import LivePlane
from repro.scenario import make_scenario
from repro.topology import dumbbell
from repro.traffic import Transport, fixed_flows


@pytest.fixture(scope="module")
def scenario():
    topo = dumbbell(3)
    flows = fixed_flows(topo.hosts, n_flows=6, size_bytes=40_000,
                        transport=Transport.DCTCP, seed=5)
    return make_scenario(topo, flows)


@pytest.fixture(scope="module")
def reference_digest(scenario):
    return run_dons(scenario, TraceLevel.FULL,
                    backend="python").trace.digest()


def _run_with_plane(engine, metrics_port=0):
    plane = LivePlane(engine, stream=io.StringIO(), interval_ms=0,
                      metrics_port=metrics_port)
    try:
        EngineRunner(engine, on_step=plane.on_step).run()
    finally:
        plane.close()
    assert plane.records_emitted > 0
    return engine.results


@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_serial_digest_neutral_with_live_plane(scenario, reference_digest,
                                               backend):
    if backend == "numpy":
        pytest.importorskip("numpy")
    engine = DodEngine(scenario, TraceLevel.FULL, backend=backend)
    results = _run_with_plane(engine)
    assert results.trace.digest() == reference_digest


@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_cluster_digest_neutral_with_live_plane(scenario, reference_digest,
                                                backend):
    if backend == "numpy":
        pytest.importorskip("numpy")
    from repro.cluster import DonsManager
    from repro.partition import ClusterSpec
    part = contiguous_partition(scenario.topology, 2)
    digests = {}
    for live in (False, True):
        mgr = DonsManager(scenario, ClusterSpec.homogeneous(2),
                          TraceLevel.FULL, transport="process",
                          backend=backend)
        engine = mgr._engine(part)
        if live:
            _run_with_plane(engine)
        else:
            EngineRunner(engine).run()
        digests[live] = engine.results.trace.digest()
    assert digests[False] == digests[True] == reference_digest


def test_serial_results_identical_with_live_plane(scenario):
    """Beyond the digest: event counts and flow outcomes are untouched."""
    plain = DodEngine(scenario)
    EngineRunner(plain).run()
    live = DodEngine(scenario)
    _run_with_plane(live)
    assert live.results.events.total == plain.results.events.total
    assert live.results.drops == plain.results.drops
    assert ({f: r.complete_ps for f, r in live.results.flows.items()}
            == {f: r.complete_ps for f, r in plain.results.flows.items()})
