"""Telemetry must be observationally invisible to the simulation.

The acceptance bar for the telemetry layer: ``trace_digest()`` is
identical with recording on and off, on both ECS backends and under
both cluster transports — spans and metric sampling only ever *read*
clocks and port counters, never perturb event order or RNG state.
"""

import pytest

from repro.core.engine import run_dons
from repro.des.partition_types import contiguous_partition
from repro.metrics import TraceLevel
from repro.scenario import make_scenario
from repro.topology import dumbbell
from repro.traffic import Transport, fixed_flows


@pytest.fixture(scope="module")
def scenario():
    topo = dumbbell(3)
    flows = fixed_flows(topo.hosts, n_flows=6, size_bytes=40_000,
                        transport=Transport.DCTCP, seed=5)
    return make_scenario(topo, flows)


def _digest(results):
    return results.trace.digest()


@pytest.fixture(scope="module")
def reference_digest(scenario):
    return _digest(run_dons(scenario, TraceLevel.FULL, backend="python"))


@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_single_engine_digest_neutral(scenario, reference_digest, backend):
    if backend == "numpy":
        pytest.importorskip("numpy")
    on = run_dons(scenario, TraceLevel.FULL, backend=backend,
                  telemetry=True)
    assert _digest(on) == reference_digest
    off = run_dons(scenario, TraceLevel.FULL, backend=backend,
                   telemetry=False)
    assert _digest(off) == reference_digest


@pytest.mark.parametrize("transport", ["local", "process"])
def test_cluster_digest_neutral(scenario, reference_digest, transport):
    from repro.cluster import DonsManager
    from repro.partition import ClusterSpec
    part = contiguous_partition(scenario.topology, 2)
    digests = {}
    for telemetry in (False, True):
        run = DonsManager(scenario, ClusterSpec.homogeneous(2),
                          TraceLevel.FULL, transport=transport,
                          telemetry=telemetry).run(partition=part)
        digests[telemetry] = run.results.trace.digest()
    assert digests[False] == digests[True] == reference_digest


def test_telemetry_env_switch(scenario, reference_digest, monkeypatch):
    """REPRO_TELEMETRY turns recording on without code changes — and
    still does not move the digest."""
    monkeypatch.setenv("REPRO_TELEMETRY", "1")
    res = run_dons(scenario, TraceLevel.FULL, backend="python")
    assert _digest(res) == reference_digest
    monkeypatch.setenv("REPRO_TELEMETRY", "0")
    from repro.core.engine import DodEngine
    assert DodEngine(scenario).telemetry is False


def test_checkpoints_identical_without_telemetry(scenario):
    """With telemetry off, checkpoint payloads carry no bus state —
    byte-for-byte what they were before the telemetry layer."""
    import pickle
    from repro.core.checkpoint import take_checkpoint
    from repro.core.engine import DodEngine
    engine = DodEngine(scenario)
    engine.build()
    state = pickle.loads(take_checkpoint(engine, 0).payload)
    assert "bus_state" not in state
    telemetered = DodEngine(scenario, telemetry=True)
    telemetered.build()
    state = pickle.loads(take_checkpoint(telemetered, 0).payload)
    assert "bus_state" in state
