"""Per-packet ECMP (packet spraying): correctness under reordering."""

import pytest

from repro.core.engine import run_dons
from repro.des import run_baseline
from repro.metrics import TraceLevel
from repro.metrics.traceview import hops
from repro.scenario import make_scenario
from repro.topology import fattree, leaf_spine
from repro.traffic import Flow, Transport
from repro.units import GBPS, us


@pytest.fixture(scope="module")
def spray_scenario():
    # Many spines -> real path diversity for a single flow.
    topo = leaf_spine(2, 4, hosts_per_leaf=2,
                      host_rate_bps=10 * GBPS, fabric_rate_bps=10 * GBPS)
    hosts = topo.hosts
    flows = [Flow(0, hosts[0], hosts[3], 150_000, 0),
             Flow(1, hosts[1], hosts[2], 150_000, 0)]
    return make_scenario(topo, flows, ecmp_mode="packet")


def test_engines_agree_under_spraying(spray_scenario):
    a = run_baseline(spray_scenario, TraceLevel.FULL)
    b = run_dons(spray_scenario, TraceLevel.FULL)
    assert a.trace.sorted_entries() == b.trace.sorted_entries()
    assert a.fcts_ps() == b.fcts_ps()
    assert a.completed() == 2


def test_spraying_actually_sprays(spray_scenario):
    res = run_baseline(spray_scenario, TraceLevel.FULL)
    # Different segments of flow 0 should traverse different spine ports.
    second_hop_ifaces = set()
    for seq in range(0, 40):
        hop_list = hops(res.trace, flow=0, seq=seq)
        if len(hop_list) >= 2:
            second_hop_ifaces.add(hop_list[1].iface_id)
    assert len(second_hop_ifaces) >= 2, "all packets took one path"


def test_flow_mode_pins_one_path(spray_scenario):
    import dataclasses
    pinned = dataclasses.replace(spray_scenario, ecmp_mode="flow")
    res = run_baseline(pinned, TraceLevel.FULL)
    second_hop_ifaces = set()
    for seq in range(0, 40):
        hop_list = hops(res.trace, flow=0, seq=seq)
        if len(hop_list) >= 2:
            second_hop_ifaces.add(hop_list[1].iface_id)
    assert len(second_hop_ifaces) == 1


def test_spraying_with_reordering_still_completes():
    """Asymmetric spine delays force out-of-order arrival; cumulative-ACK
    reassembly must absorb it (possibly via dup-ack retransmissions)."""
    from repro.topology.graph import Topology
    topo = Topology("asym-spines")
    h = [topo.add_host() for _ in range(2)]
    leaves = [topo.add_switch("leafA"), topo.add_switch("leafB")]
    spines = [topo.add_switch(f"spine{i}") for i in range(2)]
    topo.add_link(h[0], leaves[0], 10 * GBPS, us(1))
    topo.add_link(h[1], leaves[1], 10 * GBPS, us(1))
    for leaf in leaves:
        topo.add_link(leaf, spines[0], 10 * GBPS, us(1))
        topo.add_link(leaf, spines[1], 10 * GBPS, us(9))  # slow spine
    topo.freeze()
    sc = make_scenario(topo, [Flow(0, h[0], h[1], 100_000, 0)],
                       ecmp_mode="packet")
    a = run_baseline(sc, TraceLevel.FULL)
    b = run_dons(sc, TraceLevel.FULL)
    assert a.trace.digest() == b.trace.digest()
    assert a.completed() == 1
