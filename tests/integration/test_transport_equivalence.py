"""Transport equivalence: the merged distributed trace is the same
bytes whether the agents run in-process (LocalTransport), in separate
worker processes (ProcessTransport), or as one single-machine engine.

This is the contract that makes the transport a pure execution-placement
choice: nothing about *where* an agent runs may leak into *what* it
simulates.
"""

import pytest

from repro.cluster import DonsManager
from repro.core.engine import run_dons
from repro.des.partition_types import contiguous_partition, random_partition
from repro.metrics import TraceLevel
from repro.partition import ClusterSpec
from repro.scenario import make_scenario
from repro.topology import fattree
from repro.traffic import full_mesh_dynamic, TINY
from repro.units import GBPS, ms, us


@pytest.fixture(scope="module")
def scenario():
    """FatTree(4) under dynamic DCTCP traffic (ECN threshold marking is
    the make_scenario default)."""
    topo = fattree(4, rate_bps=10 * GBPS, delay_ps=us(1))
    flows = full_mesh_dynamic(topo.hosts, ms(0.3), load=0.4,
                              host_rate_bps=10 * GBPS, sizes=TINY,
                              seed=21, max_flows=40)
    return make_scenario(topo, flows, buffer_bytes=50_000)


@pytest.fixture(scope="module")
def reference(scenario):
    return run_dons(scenario, TraceLevel.FULL)


def _run(scenario, transport, partition):
    n = partition.num_parts
    return DonsManager(scenario, ClusterSpec.homogeneous(n),
                       TraceLevel.FULL, transport=transport
                       ).run(partition=partition)


@pytest.mark.parametrize("machines,seed", [(2, 3), (3, 8)])
def test_local_and_process_byte_identical(scenario, reference,
                                          machines, seed):
    part = random_partition(scenario.topology, machines, seed)
    local = _run(scenario, "local", part)
    proc = _run(scenario, "process", part)
    # byte-identical: raw entry lists, not sorted views — the merge
    # order (agent 0, agent 1, ...) is part of the contract
    assert local.results.trace.entries == proc.results.trace.entries
    assert local.results.fcts_ps() == proc.results.fcts_ps()
    assert local.results.rtt_samples == proc.results.rtt_samples
    # the channel accounting cannot tell the transports apart either
    assert local.traffic == proc.traffic
    # and both reproduce the single-machine run
    assert (sorted(local.results.trace.entries)
            == sorted(reference.trace.entries))


def test_process_transport_matches_single_machine(scenario, reference):
    part = contiguous_partition(scenario.topology, 2)
    proc = _run(scenario, "process", part)
    assert (sorted(proc.results.trace.entries)
            == sorted(reference.trace.entries))
    assert proc.results.fcts_ps() == reference.fcts_ps()


def test_process_transport_merges_bus(scenario):
    """The worker processes ship their instrumentation home: the merged
    bus sees every agent's tagged systems even though the engines lived
    in other address spaces."""
    part = contiguous_partition(scenario.topology, 2)
    proc = _run(scenario, "process", part)
    for agent in range(2):
        for system in ("ack", "send", "forward", "transmit"):
            assert f"a{agent}:{system}" in proc.bus.totals
    assert proc.bus.counters["cluster.windows"] == proc.traffic.windows
