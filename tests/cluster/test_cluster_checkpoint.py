"""Cluster-wide checkpoint/resume (§8 multi-machine fault tolerance)."""

import pytest

from repro.cluster.agent import AgentEngine
from repro.cluster.checkpoint import (
    ClusterCheckpoint, resume_cluster, take_cluster_checkpoint,
)
from repro.cluster.manager import ClusterController, merge_results
from repro.core.engine import run_dons
from repro.des.partition_types import contiguous_partition, random_partition
from repro.errors import ClusterError
from repro.metrics import TraceLevel
from repro.scenario import make_scenario
from repro.topology import fattree
from repro.traffic import full_mesh_dynamic, TINY
from repro.units import GBPS, ms, us


@pytest.fixture(scope="module")
def scenario():
    topo = fattree(4, rate_bps=10 * GBPS, delay_ps=us(1))
    flows = full_mesh_dynamic(topo.hosts, ms(0.4), load=0.5,
                              host_rate_bps=10 * GBPS, sizes=TINY,
                              seed=29, max_flows=40)
    return make_scenario(topo, flows, buffer_bytes=60_000)


@pytest.fixture(scope="module")
def reference(scenario):
    return run_dons(scenario, TraceLevel.FULL)


def _run_until(scenario, partition, windows, schedule=None):
    agents = [AgentEngine(a, scenario, partition, TraceLevel.FULL)
              for a in range(partition.num_parts)]
    controller = ClusterController(agents, schedule=schedule)
    for agent in agents:
        agent.build()
    current = -1
    done = 0
    while done < windows:
        pending = [a.peek_next_window(current) for a in agents]
        live = [w for w in pending if w is not None]
        if not live:
            break
        window = min(live)
        controller._maybe_migrate(window)
        for agent in agents:
            agent.process_window(window)
        for agent in agents:
            for dst, records in sorted(agent.take_outbox().items()):
                controller.channels[(agent.agent_id, dst)].send_batch(records)
        for (src, dst), ch in controller.channels.items():
            records = ch.drain()
            if records:
                agents[dst].accept_remote(records)
        current = window
        done += 1
    return controller, current


@pytest.mark.parametrize("stop_after", [3, 25])
def test_cluster_resume_reproduces_trace(scenario, reference, stop_after):
    part = contiguous_partition(scenario.topology, 3)
    controller, current = _run_until(scenario, part, stop_after)
    ckpt = take_cluster_checkpoint(controller, current)
    # The "cluster crash": everything is discarded.
    del controller
    merged, _fresh = resume_cluster(scenario, ckpt, TraceLevel.FULL)
    assert (sorted(merged.trace.entries)
            == sorted(reference.trace.entries))
    assert merged.fcts_ps() == reference.fcts_ps()


def test_checkpoint_preserves_pending_migrations(scenario, reference):
    topo = scenario.topology
    part = contiguous_partition(topo, 3)
    later = random_partition(topo, 3, seed=4)
    # Stop before the migration boundary; it must survive the checkpoint.
    controller, current = _run_until(scenario, part, 5,
                                     schedule=[(100, later)])
    ckpt = take_cluster_checkpoint(controller, current)
    assert ckpt.schedule, "pending migration lost"
    merged, fresh = resume_cluster(scenario, ckpt, TraceLevel.FULL)
    assert fresh.migrations, "migration never executed after resume"
    assert (sorted(merged.trace.entries)
            == sorted(reference.trace.entries))


def test_scenario_mismatch_rejected(scenario):
    part = contiguous_partition(scenario.topology, 2)
    controller, current = _run_until(scenario, part, 2)
    ckpt = take_cluster_checkpoint(controller, current)
    import dataclasses
    other = dataclasses.replace(scenario, name="something-else")
    with pytest.raises(ClusterError):
        resume_cluster(other, ckpt)


def test_bad_format_rejected(scenario):
    part = contiguous_partition(scenario.topology, 2)
    controller, current = _run_until(scenario, part, 2)
    ckpt = take_cluster_checkpoint(controller, current)
    bad = ClusterCheckpoint("v0", ckpt.scenario_name, current,
                            ckpt.partition, ckpt.num_parts, [],
                            ckpt.agent_payloads)
    with pytest.raises(ClusterError):
        resume_cluster(scenario, bad)
