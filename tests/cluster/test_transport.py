"""Transport layer: lazy channels, build-time agreement, merged bus,
and the measured time-cost plumbing the merged bus feeds."""

import dataclasses

import pytest

from repro.cluster import (
    AgentSpec, ChannelMap, ClusterEngine, DonsManager, LocalTransport,
    make_transport, ProcessTransport, Transport,
)
from repro.des.partition_types import contiguous_partition
from repro.errors import ClusterError, PartitionError
from repro.partition import (
    ClusterSpec, estimate_scenario_loads, machine_times,
    measured_machine_times, refit_cluster_spec,
)
from repro.scenario import make_scenario
from repro.topology import dumbbell, fattree
from repro.traffic import Flow
from repro.units import GBPS, us


def _scenario(n_flows=6):
    topo = fattree(4, rate_bps=10 * GBPS, delay_ps=us(1))
    hosts = topo.hosts
    flows = [Flow(i, hosts[i], hosts[15 - i], 30_000, i * us(1))
             for i in range(n_flows)]
    return make_scenario(topo, flows, buffer_bytes=40_000)


class TestChannelMap:
    def test_lazy_creation(self):
        chans = ChannelMap()
        assert len(chans) == 0
        ch = chans[0, 1]
        assert (ch.src, ch.dst) == (0, 1)
        assert chans[0, 1] is ch  # memoized
        assert len(chans) == 1

    def test_self_channel_rejected(self):
        with pytest.raises(ClusterError):
            ChannelMap()[2, 2]

    def test_sorted_items_deterministic(self):
        chans = ChannelMap()
        for pair in [(2, 0), (0, 1), (1, 0), (0, 2)]:
            chans[pair]
        assert [pair for pair, _ in chans.sorted_items()] == [
            (0, 1), (0, 2), (1, 0), (2, 0),
        ]

    def test_sparse_cut_allocates_few_channels(self):
        """A linear 4-part cut of a dumbbell only talks along the chain —
        the lazy map materializes far fewer channels than the eager
        N*(N-1) allocation did."""
        from repro.core.runner import EngineRunner
        topo = dumbbell(8, delay_ps=us(1))
        hosts = topo.hosts
        flows = [Flow(i, hosts[i], hosts[8 + i], 20_000, 0)
                 for i in range(4)]
        sc = make_scenario(topo, flows, buffer_bytes=40_000)
        part = contiguous_partition(topo, 4)
        engine = DonsManager(sc, ClusterSpec.homogeneous(4))._engine(part)
        assert len(engine.transport.channels) == 0  # nothing up front
        EngineRunner(engine).run()
        n = part.num_parts
        assert engine.stats.rpc_messages > 0  # traffic did cross the cut
        assert 0 < len(engine.transport.channels) < n * (n - 1)


class TestAgreement:
    def test_duration_mismatch_rejected(self):
        sc = _scenario()
        part = contiguous_partition(sc.topology, 2)
        specs = [AgentSpec(a, sc, part) for a in range(2)]
        shorter = dataclasses.replace(sc, duration_ps=us(1))
        specs[1] = AgentSpec(1, shorter, part)
        with pytest.raises(ClusterError, match="duration_ps"):
            ClusterEngine(specs).build()

    def test_lookahead_mismatch_rejected(self):
        """lookahead_ps derives from the smallest link delay, so a second
        build of the same scenario over a slower fabric disagrees."""
        topo_a = fattree(4, rate_bps=10 * GBPS, delay_ps=us(1))
        topo_b = fattree(4, rate_bps=10 * GBPS, delay_ps=us(2))
        flows = [Flow(0, topo_a.hosts[0], topo_a.hosts[15], 30_000, 0)]
        sc_a = make_scenario(topo_a, flows, name="same")
        sc_b = make_scenario(topo_b, flows, name="same")
        part = contiguous_partition(topo_a, 2)
        specs = [AgentSpec(0, sc_a, part), AgentSpec(1, sc_b, part)]
        with pytest.raises(ClusterError, match="lookahead"):
            ClusterEngine(specs).build()

    def test_partition_mismatch_rejected(self):
        sc = _scenario()
        part2 = contiguous_partition(sc.topology, 2)
        from repro.des.partition_types import random_partition
        other = random_partition(sc.topology, 2, seed=3)
        specs = [AgentSpec(0, sc, part2), AgentSpec(1, sc, other)]
        with pytest.raises(ClusterError, match="different partition"):
            ClusterEngine(specs).build()


class TestMakeTransport:
    def test_resolution(self):
        assert isinstance(make_transport(None), LocalTransport)
        assert isinstance(make_transport("local"), LocalTransport)
        assert isinstance(make_transport("process"), ProcessTransport)
        shm = make_transport("shm")
        assert isinstance(shm, ProcessTransport) and shm.shm
        inst = LocalTransport()
        assert make_transport(inst) is inst
        with pytest.raises(ClusterError):
            make_transport("carrier-pigeon")

    def test_base_transport_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Transport().launch([])


class TestMergedBus:
    def test_counters_and_tagged_totals(self):
        sc = _scenario()
        part = contiguous_partition(sc.topology, 2)
        run = DonsManager(sc, ClusterSpec.homogeneous(2)).run(partition=part)
        bus = run.bus
        assert bus is not None
        assert bus.counters["cluster.windows"] == run.traffic.windows
        # per-agent per-system totals, tagged a<id>:<system>
        for agent in range(2):
            for system in ("ack", "send", "forward", "transmit"):
                assert f"a{agent}:{system}" in bus.totals
        # per-window profiles carry both agents' tagged systems
        tagged = {name for w in bus.windows for name in w.systems}
        assert any(name.startswith("a0:") for name in tagged)
        assert any(name.startswith("a1:") for name in tagged)
        assert bus.windows == sorted(bus.windows, key=lambda w: w.index)

    def test_measured_times_from_bus(self):
        sc = _scenario()
        part = contiguous_partition(sc.topology, 2)
        run = DonsManager(sc, ClusterSpec.homogeneous(2)).run(partition=part)
        times = measured_machine_times(run.bus, 2)
        assert len(times) == 2
        assert all(t > 0 for t in times)
        expected = sum(p.elapsed_s for name, p in run.bus.totals.items()
                       if name.startswith("a0:"))
        assert times[0] == pytest.approx(expected)


class TestRefitClusterSpec:
    def test_refit_reproduces_measurement(self):
        sc = _scenario()
        part = contiguous_partition(sc.topology, 2)
        loads = estimate_scenario_loads(sc)
        cluster = ClusterSpec.homogeneous(2)
        measured = [0.5, 2.0]
        refit = refit_cluster_spec(cluster, sc.topology, part, loads,
                                   measured)
        times = machine_times(sc.topology, part, loads, refit)
        assert times == pytest.approx(measured)

    def test_short_measurement_rejected(self):
        sc = _scenario()
        part = contiguous_partition(sc.topology, 3)
        loads = estimate_scenario_loads(sc)
        with pytest.raises(PartitionError):
            refit_cluster_spec(ClusterSpec.homogeneous(3), sc.topology,
                               part, loads, [1.0])

    def test_zero_measurement_keeps_configured_capacity(self):
        sc = _scenario()
        part = contiguous_partition(sc.topology, 2)
        loads = estimate_scenario_loads(sc)
        cluster = ClusterSpec.homogeneous(2, compute=7e8)
        refit = refit_cluster_spec(cluster, sc.topology, part, loads,
                                   [0.0, 0.0])
        assert list(refit.compute) == [7e8, 7e8]
