"""Fault tolerance: kill an agent mid-simulation, recover it from the
latest checkpoint, replay its missed inputs — and the merged trace is
byte-identical to the fault-free run.

The kill is real on both transports: the LocalTransport drops the
engine object (its memory is gone), the ProcessTransport terminates the
worker process outright.
"""

import pytest

from repro.cluster import DonsManager, FaultPlan
from repro.core.engine import run_dons
from repro.des.partition_types import contiguous_partition
from repro.errors import ClusterError
from repro.metrics import TraceLevel
from repro.partition import ClusterSpec
from repro.scenario import make_scenario
from repro.topology import fattree
from repro.traffic import full_mesh_dynamic, TINY
from repro.units import GBPS, ms, us


@pytest.fixture(scope="module")
def scenario():
    topo = fattree(4, rate_bps=10 * GBPS, delay_ps=us(1))
    flows = full_mesh_dynamic(topo.hosts, ms(0.3), load=0.4,
                              host_rate_bps=10 * GBPS, sizes=TINY,
                              seed=33, max_flows=40)
    return make_scenario(topo, flows, buffer_bytes=50_000)


@pytest.fixture(scope="module")
def reference(scenario):
    return run_dons(scenario, TraceLevel.FULL)


def _run(scenario, transport, checkpoint_every=None, fault=None):
    part = contiguous_partition(scenario.topology, 2)
    mgr = DonsManager(scenario, ClusterSpec.homogeneous(2),
                      TraceLevel.FULL, transport=transport,
                      checkpoint_every=checkpoint_every, fault=fault)
    return mgr.run(partition=part)


@pytest.mark.parametrize("transport", ["local", "process"])
def test_kill_and_recover_byte_identical(scenario, reference, transport):
    fault = FaultPlan(agent=1, at_window=12)
    run = _run(scenario, transport, checkpoint_every=5, fault=fault)
    assert fault.fired
    assert len(run.recoveries) == 1
    rec = run.recoveries[0]
    assert rec.agent == 1
    assert rec.failed_window >= 12
    assert rec.restored_from_window < rec.failed_window
    assert (sorted(run.results.trace.entries)
            == sorted(reference.trace.entries))
    assert run.results.fcts_ps() == reference.fcts_ps()


def test_recovery_replays_missed_windows_and_records(scenario, reference):
    """A sparse checkpoint cadence forces a long replay: the restored
    agent re-executes every window since the snapshot and re-ingests
    the peer batches logged in between."""
    fault = FaultPlan(agent=0, at_window=60)
    run = _run(scenario, "local", checkpoint_every=25, fault=fault)
    rec = run.recoveries[0]
    assert rec.windows_replayed > 0
    assert rec.records_replayed > 0
    assert (sorted(run.results.trace.entries)
            == sorted(reference.trace.entries))


def test_fault_free_checkpointing_is_invisible(scenario, reference):
    """Taking periodic snapshots without any failure must not perturb
    the simulation."""
    run = _run(scenario, "local", checkpoint_every=10)
    assert run.recoveries == []
    assert run.bus.counters["cluster.checkpoints"] > 1
    assert (sorted(run.results.trace.entries)
            == sorted(reference.trace.entries))


def test_fault_without_checkpoints_recovers_from_initial_snapshot(scenario,
                                                                  reference):
    """With a fault plan but no cadence, the only snapshot is the one
    taken at build time — recovery replays the whole prefix."""
    fault = FaultPlan(agent=1, at_window=8)
    run = _run(scenario, "local", fault=fault)
    rec = run.recoveries[0]
    assert rec.restored_from_window == -1
    assert rec.windows_replayed > 0
    assert (sorted(run.results.trace.entries)
            == sorted(reference.trace.entries))


@pytest.mark.parametrize("transport", ["local", "process"])
def test_recovery_keeps_telemetry_spans(scenario, reference, transport):
    """A kill must not drop the dead agent's telemetry: spans recorded
    before the snapshot ride the checkpoint (bus state is captured when
    telemetry is on) and the replay re-records the windows since, so the
    merged timeline has no holes."""
    fault = FaultPlan(agent=1, at_window=12)
    part = contiguous_partition(scenario.topology, 2)
    mgr = DonsManager(scenario, ClusterSpec.homogeneous(2),
                      TraceLevel.FULL, transport=transport,
                      checkpoint_every=5, fault=fault, telemetry=True)
    run = mgr.run(partition=part)
    assert fault.fired and len(run.recoveries) == 1

    def window_indices(tag):
        return {span[4]["index"] for span in run.bus.spans
                if span[2] == f"{tag}:window" and span[3] == "window"
                and span[4]}

    survivor, killed = window_indices("a0"), window_indices("a1")
    assert survivor and killed
    # The restored agent's timeline covers every window the survivor
    # ran — nothing recorded before the kill was lost.
    assert survivor <= killed
    # Its metric samples survived too (summed into the cluster registry
    # from both agents, including the pre-kill checkpointed counts).
    hist = run.bus.metrics.histograms["port.queue_depth_bytes"]
    assert hist.count > 0
    # And telemetry never costs fidelity: the recovered trace still
    # matches the fault-free single-machine reference.
    assert (sorted(run.results.trace.entries)
            == sorted(reference.trace.entries))


def test_migration_plus_fault_tolerance_rejected(scenario):
    """A restored agent would resume under a stale partition; the
    combination fails loudly at construction."""
    from repro.cluster import AgentSpec, ClusterEngine
    part = contiguous_partition(scenario.topology, 2)
    specs = [AgentSpec(a, scenario, part) for a in range(2)]
    with pytest.raises(ClusterError, match="migration"):
        ClusterEngine(specs, checkpoint_every=5,
                      schedule=[(5, part)])
