"""Cluster watchdog: stall/slowness detection over measured reply times.

The drill the issue prescribes: inject a sleep into one agent via the
transport test hook and assert the watchdog flags it within two
sampling intervals (here: windows — the watchdog observes every cluster
window the transport timed).
"""

import io
import json
import time

import pytest

import repro.cluster.transport as transport_mod
from repro.cluster import DonsManager
from repro.core.runner import EngineRunner
from repro.metrics.live import ClusterWatchdog, LivePlane
from repro.partition import ClusterSpec, plan_scenario, refit_cluster_spec
from repro.scenario import make_scenario
from repro.topology import dumbbell
from repro.traffic import Transport, fixed_flows


@pytest.fixture(scope="module")
def scenario():
    topo = dumbbell(3)
    flows = fixed_flows(topo.hosts, n_flows=6, size_bytes=40_000,
                        transport=Transport.DCTCP, seed=5)
    return make_scenario(topo, flows)


@pytest.fixture
def stall_hook():
    """Install-and-restore for the transport's stall_injector test hook."""
    def install(fn):
        transport_mod.stall_injector = fn
    yield install
    transport_mod.stall_injector = None


def _cluster_engine(scenario, **kwargs):
    mgr = DonsManager(scenario, ClusterSpec.homogeneous(2), **kwargs)
    return mgr._engine(plan_scenario(scenario, mgr.cluster).partition)


# --- unit-level ------------------------------------------------------------

def test_watchdog_classifies_slow_and_stalled():
    dog = ClusterWatchdog(2, slow_factor=4.0, stall_factor=20.0,
                          min_slow_s=1e-3, min_stall_s=0.05, warmup=2)
    for window in range(4):  # learn a ~10ms baseline
        assert dog.observe(window, [0.01, 0.01]) == []
    slow = dog.observe(4, [0.01, 0.045])
    assert [e["event"] for e in slow] == ["slow"]
    stalled = dog.observe(5, [0.01, 0.3])
    assert [(e["event"], e["agent"], e["window"]) for e in stalled] \
        == [("stalled", 1, 5)]
    # Flagged samples never update the baseline that caught them.
    healthy = dog.observe(6, [0.01, 0.011])
    assert healthy == []
    assert dog.flags == [0, 2]
    # pop_events drains the queue once.
    assert len(dog.pop_events()) == 2
    assert dog.pop_events() == []


def test_watchdog_warmup_suppresses_flags():
    dog = ClusterWatchdog(1, warmup=3)
    assert dog.observe(0, [0.5]) == []
    assert dog.observe(1, [0.5]) == []
    assert dog.observe(2, [0.5]) == []


def test_watchdog_accumulates_busy_and_wait():
    dog = ClusterWatchdog(2, warmup=100)
    dog.observe(0, [0.01, 0.03])
    dog.observe(1, [0.02, 0.01])
    assert dog.busy_s == pytest.approx([0.03, 0.04])
    assert dog.wait_s == pytest.approx([0.02, 0.01])
    assert dog.measured_times() == pytest.approx([0.03, 0.04])


# --- the drill -------------------------------------------------------------

def test_watchdog_drill_detects_stalled_agent(scenario, stall_hook):
    """A deliberately stalled agent (60ms, above the 50ms stall floor)
    is flagged ``stalled`` within 2 sampling intervals of the stall."""
    engine = _cluster_engine(scenario, watchdog=True)
    assert engine.watchdog is not None
    assert engine.transport.track_times is True
    stall_from = 8
    injected = []

    def inject(agent_id, window):
        if agent_id == 1 and window >= stall_from and len(injected) < 2:
            injected.append(window)
            time.sleep(0.06)

    stall_hook(inject)
    buf = io.StringIO()
    plane = LivePlane(engine, stream=buf, interval_ms=0)
    try:
        EngineRunner(engine, on_step=plane.on_step).run()
    finally:
        plane.close()
    assert injected, "the drill never fired"
    counters = engine.bus.counters
    assert counters.get("watchdog.stalled", 0) >= 1
    assert counters.get("watchdog.checks", 0) > 0
    stalled = [json.loads(line) for line in buf.getvalue().splitlines()
               if json.loads(line).get("event") == "stalled"]
    assert stalled, "no stalled event reached the live stream"
    first = stalled[0]
    assert first["kind"] == "watchdog"
    assert first["agent"] == 1
    # Detected within 2 sampling intervals of the injected stall.
    assert first["window"] <= injected[0] + 1
    assert first["window_s"] >= 0.05


def test_watchdog_without_telemetry_feeds_refit(scenario, stall_hook):
    """Telemetry off + watchdog on: the transport still measures reply
    times, finalize still exports the busy/wait gauges, and the
    accumulated times drive refit_cluster_spec."""
    engine = _cluster_engine(scenario, watchdog=True)
    assert engine.bus.telemetry is False

    def inject(agent_id, _window):
        if agent_id == 1:
            time.sleep(0.0005)  # skew agent 1 so the refit can see it

    stall_hook(inject)
    EngineRunner(engine).run()
    gauges = engine.bus.metrics.gauges
    assert gauges["a1:busy_s"] > gauges["a0:busy_s"] > 0
    assert gauges["a0:barrier_wait_s"] > 0
    measured = engine.watchdog.measured_times()
    assert measured == pytest.approx(
        [engine.watchdog.busy_s[0], engine.watchdog.busy_s[1]])
    from repro.partition.loadest import estimate_scenario_loads
    cluster = ClusterSpec.homogeneous(2)
    loads = estimate_scenario_loads(scenario)
    plan = plan_scenario(scenario, cluster, loads)
    refit = refit_cluster_spec(cluster, scenario.topology, plan.partition,
                               loads, measured)
    assert refit is not None


def test_watchdog_defaults(scenario):
    # Default: armed iff the bus is telemetered.
    assert _cluster_engine(scenario).watchdog is None
    assert _cluster_engine(scenario, telemetry=True).watchdog is not None
    # Explicit off wins even with telemetry.
    engine = _cluster_engine(scenario, telemetry=True, watchdog=False)
    assert engine.watchdog is None
    # An instance is adopted as-is.
    dog = ClusterWatchdog(2)
    assert _cluster_engine(scenario, watchdog=dog).watchdog is dog


def test_watchdog_env_switch(scenario, monkeypatch):
    monkeypatch.setenv("REPRO_WATCHDOG", "1")
    engine = _cluster_engine(scenario)
    assert engine.watchdog is not None
    monkeypatch.setenv("REPRO_WATCHDOG", "0")
    assert _cluster_engine(scenario).watchdog is None


def test_watchdog_digest_neutral(scenario):
    """The watchdog's counters/gauges never move the simulation trace."""
    from repro.metrics import TraceLevel

    def run(**kwargs):
        mgr = DonsManager(scenario, ClusterSpec.homogeneous(2),
                          TraceLevel.FULL, **kwargs)
        return mgr.run().results.trace.digest()

    assert run(watchdog=False) == run(watchdog=True)
