"""Live migration edge cases (Appendix A, satellite coverage):
no-op schedules, multiple boundaries collapsing into one window gap,
and migration immediately followed by cross-machine RPC traffic."""

from repro.cluster import ClusterController, merge_results
from repro.cluster.agent import AgentEngine
from repro.core.engine import run_dons
from repro.des.partition_types import contiguous_partition, random_partition
from repro.metrics import TraceLevel
from repro.scenario import make_scenario
from repro.topology import fattree
from repro.traffic import Flow
from repro.units import GBPS, us


def _scenario(start_us=0):
    topo = fattree(4, rate_bps=10 * GBPS, delay_ps=us(1))
    hosts = topo.hosts
    flows = [Flow(i, hosts[i], hosts[15 - i], 40_000,
                  us(start_us) + i * us(1))
             for i in range(6)]
    return make_scenario(topo, flows, buffer_bytes=50_000)


def _controller(scenario, first, schedule, machines=3):
    agents = [AgentEngine(a, scenario, first, TraceLevel.FULL)
              for a in range(machines)]
    return ClusterController(agents, schedule=schedule)


def test_noop_migration_is_free():
    """A boundary whose new partition equals the old is free: no
    migration event, trace untouched."""
    sc = _scenario()
    reference = run_dons(sc, TraceLevel.FULL)
    first = contiguous_partition(sc.topology, 3)
    same = contiguous_partition(sc.topology, 3)
    assert same.assignment == first.assignment and same is not first
    controller = _controller(sc, first, [(10, same)])
    per_agent = controller.run()
    assert controller.migrations == []
    merged = merge_results(per_agent, sc.name)
    assert sorted(merged.trace.entries) == sorted(reference.trace.entries)


def test_multiple_boundaries_in_one_window_gap():
    """Flows start late, so the first executed window jumps past several
    scheduled boundaries at once — every one of them must fire, in
    order, before that window runs."""
    sc = _scenario(start_us=30)
    reference = run_dons(sc, TraceLevel.FULL)
    topo = sc.topology
    first = contiguous_partition(topo, 3)
    mid = random_partition(topo, 3, seed=4)
    last = random_partition(topo, 3, seed=11)
    assert mid.assignment != first.assignment
    assert last.assignment != mid.assignment
    controller = _controller(sc, first, [(5, mid), (12, last)])
    per_agent = controller.run()
    # both boundaries sat inside the silent gap before window ~30
    assert len(controller.migrations) == 2
    assert all(m.nodes_moved > 0 for m in controller.migrations)
    for agent in controller.agents:
        assert agent.partition.assignment == last.assignment
    merged = merge_results(per_agent, sc.name)
    assert sorted(merged.trace.entries) == sorted(reference.trace.entries)


def test_migration_immediately_followed_by_rpc():
    """Migrate in the middle of active traffic: the very window that
    runs right after the hand-off must already exchange batches across
    the *new* cut, and the trace still matches the single machine."""
    sc = _scenario()
    reference = run_dons(sc, TraceLevel.FULL)
    topo = sc.topology
    first = contiguous_partition(topo, 3)
    second = random_partition(topo, 3, seed=7)
    controller = _controller(sc, first, [(3, second)])
    engine = controller.engine
    engine.build()
    while not engine.migrations:
        assert engine.advance(), "run ended before the boundary"
    records_at_migration = sum(
        c.records for c in engine.channels.values())
    # the post-migration window already moved batches across the new cut
    for _ in range(3):
        if not engine.advance():
            break
    records_after = sum(c.records for c in engine.channels.values())
    assert records_after > records_at_migration
    while engine.advance():
        pass
    engine.finalize()
    merged = merge_results(engine.per_agent, sc.name)
    assert sorted(merged.trace.entries) == sorted(reference.trace.entries)
