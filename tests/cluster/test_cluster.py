"""Distributed runtime: channels, agents, manager, FINISH accounting."""

import pytest

from repro.cluster import (
    DonsManager, RPC_FRAME_BYTES, RPC_RECORD_BYTES, RpcChannel,
)
from repro.cluster.manager import merge_results
from repro.des.partition_types import Partition, random_partition
from repro.errors import ClusterError, SimulationError
from repro.metrics import SimResults, TraceLevel
from repro.metrics.results import FlowResult
from repro.partition import ClusterSpec
from repro.protocols.packet import data_row
from repro.scenario import make_scenario
from repro.topology import fattree
from repro.traffic import Flow
from repro.units import GBPS, us


class TestRpcChannel:
    def test_batch_accounting(self):
        ch = RpcChannel(0, 1)
        rows = [(100, 2, data_row(0, i, 100, 0, 0, 2)) for i in range(3)]
        ch.send_batch(rows)
        assert ch.messages == 1
        assert ch.records == 3
        assert ch.bytes_sent == RPC_FRAME_BYTES + 3 * RPC_RECORD_BYTES
        assert ch.drain() == rows
        assert ch.drain() == []

    def test_empty_batch_free(self):
        ch = RpcChannel(0, 1)
        ch.send_batch([])
        assert ch.messages == 0 and ch.bytes_sent == 0

    def test_batches_accumulate(self):
        ch = RpcChannel(0, 1)
        ch.send_batch([(100, 2, data_row(0, 0, 100, 0, 0, 2))])
        ch.send_batch([(200, 2, data_row(0, 1, 100, 0, 0, 2))])
        assert ch.messages == 2
        assert len(ch.drain()) == 2


class TestDistributedRun:
    def _scenario(self):
        topo = fattree(4, rate_bps=10 * GBPS, delay_ps=us(1))
        hosts = topo.hosts
        flows = [Flow(i, hosts[i], hosts[15 - i], 40_000, i * us(1))
                 for i in range(6)]
        return make_scenario(topo, flows, buffer_bytes=40_000)

    def test_manager_plans_and_runs(self):
        sc = self._scenario()
        run = DonsManager(sc, ClusterSpec.homogeneous(4)).run()
        assert run.plan is not None
        assert run.results.completed() == 6
        assert run.traffic.windows > 0
        n = run.partition.num_parts
        assert run.traffic.finish_signals == run.traffic.windows * n * (n - 1)

    def test_explicit_partition_used(self):
        sc = self._scenario()
        part = random_partition(sc.topology, 3, 5)
        run = DonsManager(sc, ClusterSpec.homogeneous(3)).run(partition=part)
        assert run.plan is None
        assert run.partition is part

    def test_partition_mismatch_rejected(self):
        sc = self._scenario()
        bad = Partition((0, 1), 2)
        with pytest.raises(ClusterError):
            DonsManager(sc, ClusterSpec.homogeneous(2)).run(partition=bad)

    def test_egress_accounting_per_machine(self):
        sc = self._scenario()
        run = DonsManager(sc, ClusterSpec.homogeneous(4)).run()
        assert len(run.traffic.egress_bytes) == 4
        assert sum(run.traffic.egress_bytes) == run.traffic.rpc_bytes
        assert run.traffic.rpc_records > 0


class TestMergeResults:
    def test_flow_completion_wins_over_placeholder(self):
        a = SimResults("agent", "s", 10)
        a.flows[0] = FlowResult(0, 0, None, 100)       # sender-side stub
        b = SimResults("agent", "s", 20)
        b.flows[0] = FlowResult(0, 0, 500, 100)        # receiver side
        from repro.metrics import TraceRecorder
        a.trace = TraceRecorder(0)
        b.trace = TraceRecorder(0)
        merged = merge_results([a, b], "s")
        assert merged.flows[0].complete_ps == 500
        assert merged.end_time_ps == 20
