"""Transport stress suite for the zero-copy shared-memory path (PR 8).

Three escalations, each pinned to the LocalTransport reference:

* **High fan-out** — 4 agents on FatTree4 under dynamic mesh traffic, so
  every directed agent pair exchanges batches every window; the merged
  trace must be byte-identical across {local, shm, process}.
* **Large batches** — accept batches big enough to exercise *both* shm
  lanes: 10k records fit one ring slot (the zero-copy path), 12k
  overflow it (the pickled-pipe fallback).  The snapshots taken after —
  classic pickle from the LocalTransport, protocol-5 out-of-band
  container from the shm workers — must restore to engines with equal
  ``window_signature()``.
* **Back-to-back kill/restore** — two faults on the same agent in one
  run, each recovered from shared-memory snapshots, trace-identical to
  the same faults under the LocalTransport.

Plus a hypothesis property: however flushes, deliveries and acks
interleave (including ring-full pipe fallbacks), same-channel batches
are never reordered — the per-channel sequence numbers the receiver
observes are strictly monotone and payloads arrive intact, in order.
"""

from collections import deque

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import (
    AgentSpec, ClusterEngine, DonsManager, FaultPlan, LocalTransport,
    ProcessTransport,
)
from repro.cluster.shm import (
    KIND_SECTIONS, ChannelSequencer, ShmRing, pack_sections, unpack_sections,
)
from repro.core.checkpoint import is_oob_payload, restore_snapshot
from repro.core.instrument import InstrumentationBus
from repro.des.partition_types import contiguous_partition
from repro.metrics import TraceLevel
from repro.partition import ClusterSpec
from repro.protocols.packet import ROW_FIELDS
from repro.scenario import make_scenario
from repro.topology import fattree
from repro.traffic import TINY, full_mesh_dynamic
from repro.units import GBPS, ms, us


@pytest.fixture(scope="module")
def scenario():
    topo = fattree(4, rate_bps=10 * GBPS, delay_ps=us(1))
    flows = full_mesh_dynamic(topo.hosts, ms(0.3), load=0.4,
                              host_rate_bps=10 * GBPS, sizes=TINY,
                              seed=11, max_flows=30)
    return make_scenario(topo, flows, buffer_bytes=50_000)


def _run(scenario, transport, partition):
    n = partition.num_parts
    return DonsManager(scenario, ClusterSpec.homogeneous(n),
                       TraceLevel.FULL, transport=transport
                       ).run(partition=partition)


def test_high_fanout_shm_byte_identical(scenario):
    """4 agents, every pair exchanging records: the shm transport's
    merged trace and channel accounting are indistinguishable from the
    in-process reference (and from the pickled process transport)."""
    part = contiguous_partition(scenario.topology, 4)
    local = _run(scenario, "local", part)
    shm = _run(scenario, "shm", part)
    assert local.results.trace.entries == shm.results.trace.entries
    assert local.results.fcts_ps() == shm.results.fcts_ps()
    assert local.traffic == shm.traffic
    proc = _run(scenario, "process", part)
    assert proc.results.trace.entries == shm.results.trace.entries
    assert proc.traffic == shm.traffic


class TestLargeBatches:
    """>=10k-record deliveries through both shm lanes, snapshot parity."""

    #: 10k records = 880 KB: fits the default 1 MiB ring slot (zero-copy
    #: lane).  12k records = 1.056 MB: overflows it (pipe fallback lane).
    FITS, OVERFLOWS = 10_000, 12_000

    def _records(self, scenario, partition, count, base_window):
        lookahead = scenario.lookahead_ps
        nodes = [n for n in range(scenario.topology.num_nodes)
                 if partition.part_of(n) == 1]
        width = len(ROW_FIELDS)
        return [
            ((base_window + 1) * lookahead + k, nodes[k % len(nodes)],
             tuple((k + f) % 251 for f in range(width)))
            for k in range(count)
        ]

    def _fill(self, scenario, partition, specs, transport):
        transport.bus = InstrumentationBus()
        transport.launch(specs)
        transport.build_all()
        transport.accept(
            1, self._records(scenario, partition, self.FITS, 2))
        transport.accept(
            1, self._records(scenario, partition, self.OVERFLOWS, 9))
        payloads = transport.snapshot_all(12)
        transport.close()
        return payloads, transport.bus.counters

    def test_both_lanes_snapshot_identical_state(self, scenario):
        part = contiguous_partition(scenario.topology, 2)
        specs = [AgentSpec(a, scenario, part, TraceLevel.FULL)
                 for a in range(2)]
        local_payloads, _ = self._fill(scenario, part, specs,
                                       LocalTransport())
        shm_payloads, counters = self._fill(scenario, part, specs,
                                            ProcessTransport(shm=True))
        # Both lanes actually ran: one batch framed, one fell back.
        assert counters.get("transport.shm_frames", 0) >= 1
        assert counters.get("transport.shm_fallbacks", 0) >= 1
        # The shm snapshot is the out-of-band container, the local one
        # the classic pickle — and they restore to the same state.
        assert is_oob_payload(shm_payloads[1])
        assert not is_oob_payload(local_payloads[1])
        for agent_id in range(2):
            sigs = []
            for payload in (local_payloads[agent_id],
                            shm_payloads[agent_id]):
                engine = specs[agent_id].make()
                engine.build()
                restore_snapshot(engine, payload, 12, scenario.name)
                sigs.append(engine.window_signature())
            assert sigs[0] == sigs[1], f"agent {agent_id} state diverged"


def _run_with_faults(scenario, transport, kill_windows):
    """Two faults on agent 1, recovered from periodic snapshots."""
    part = contiguous_partition(scenario.topology, 2)
    specs = [AgentSpec(a, scenario, part, TraceLevel.FULL) for a in range(2)]
    engine = ClusterEngine(
        specs, transport=transport, checkpoint_every=2,
        fault=FaultPlan(agent=1, at_window=kill_windows[0]))
    engine.build()
    pending = list(kill_windows[1:])
    while engine.advance():
        if pending and engine.fault.fired and engine._cursor >= pending[0]:
            engine.fault = FaultPlan(agent=1, at_window=pending.pop(0))
    results = engine.finalize()
    return results.trace.entries, len(engine.recoveries)


def test_back_to_back_kill_restore_under_shm(scenario):
    """Two kill/restore cycles on the same agent: the shm transport
    tears down the dead incarnation's segments, respawns with fresh
    ones, restores from the blob-segment snapshot — twice — and the
    merged trace still matches the LocalTransport running the same
    fault schedule."""
    kills = (3, 6)
    ref, ref_recoveries = _run_with_faults(scenario, "local", kills)
    got, shm_recoveries = _run_with_faults(scenario, "shm", kills)
    assert ref_recoveries == shm_recoveries == len(kills)
    assert ref == got


ROW_WIDTH = len(ROW_FIELDS)


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_randomized_flush_ack_interleavings_keep_channel_order(data):
    """Property: no interleaving of flushes, deliveries and acks — with
    the ring saturating into pipe fallbacks — can reorder or drop a
    channel's batches.  Models the coordinator->worker accept path: a
    FIFO of commands carrying either a ring frame reference or the raw
    fallback, a reader that acks by sequence at arbitrary later points,
    and the receiver-side ChannelSequencer that must never observe a
    regression."""
    ring = ShmRing.create("hyp", slot_bytes=1024, n_slots=3)
    reader = None
    try:
        reader = ShmRing.attach(ring.name)
        sequencer = ChannelSequencer()
        pipe = deque()      # the command FIFO: ("shm", seq) | ("raw", sections)
        unacked = deque()   # ring frames read but not yet acked
        chan_seq = 0
        sent = []           # (chan_seq, records) in flush order
        delivered = []      # (chan_seq, records) in delivery order

        def deliver_next():
            ref = pipe.popleft()
            if ref[0] == "shm":
                kind, _count, view = reader.read_frame(ref[1])
                assert kind == KIND_SECTIONS
                sections = unpack_sections(view)
                unacked.append(ref[1])
            else:
                sections = ref[1]
            for src, seq, records in sections:
                sequencer.observe(src, seq)  # raises on reorder/replay
                delivered.append((seq, records))

        for _ in range(data.draw(st.integers(10, 80), label="steps")):
            action = data.draw(
                st.sampled_from(("flush", "flush", "deliver", "ack")),
                label="action")
            if action == "flush":
                chan_seq += 1
                n = data.draw(st.integers(1, 3), label="records")
                records = [
                    (chan_seq * 1000 + k, k,
                     tuple((chan_seq + k + f) % 97 for f in range(ROW_WIDTH)))
                    for k in range(n)
                ]
                sent.append((chan_seq, records))
                sections = [(0, chan_seq, records)]
                payload = pack_sections(sections)
                if (len(payload) <= ring.frame_capacity
                        and ring.can_write()):
                    seq = ring.write_frame(KIND_SECTIONS, n, [payload])
                    pipe.append(("shm", seq))
                else:
                    pipe.append(("raw", sections))  # ring full: fallback
            elif action == "deliver" and pipe:
                deliver_next()
            elif action == "ack" and unacked:
                ring.mark_consumed(unacked.popleft())
        while pipe:  # drain what is still in flight
            deliver_next()
        assert delivered == sent
    finally:
        if reader is not None:
            reader.close()
        ring.unlink()
        ring.close()
