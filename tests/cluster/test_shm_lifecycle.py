"""Shared-memory segment lifecycle: created once, unlinked exactly once.

The shm transport's failure modes are all lifecycle bugs: a segment
unlinked twice (resource_tracker KeyError noise), a segment never
unlinked (``/dev/shm`` fills until the machine wedges), or a dead
incarnation's rings surviving an agent restart.  This suite pins the
contract at three levels: the :class:`ShmRing`/blob primitives, the
transport's kill/restore segment turnover, and a full run in a fresh
interpreter whose stderr must stay free of tracker warnings.
"""

import os
import subprocess
import sys
from multiprocessing import shared_memory
from pathlib import Path

import repro
from repro.cluster import AgentSpec, ProcessTransport
from repro.cluster import shm as shm_mod
from repro.cluster.shm import (
    SEGMENT_PREFIX, ShmRing, list_orphans, read_blob, reap_orphans,
    write_blob,
)
from repro.des.partition_types import contiguous_partition
from repro.metrics import TraceLevel


def _live_segments():
    return set(list_orphans())


class TestRingLifecycle:
    def test_create_unlink_exactly_once(self):
        ring = ShmRing.create("life", slot_bytes=4096, n_slots=2)
        assert ring.name in _live_segments()
        reader = ShmRing.attach(ring.name)
        # An attacher never owns the segment: its unlink is a no-op.
        reader.unlink()
        assert ring.name in _live_segments()
        ring.unlink()
        assert ring.name not in _live_segments()
        assert ring.unlinked
        ring.unlink()  # idempotent: the second call must not raise
        reader.close()
        ring.close()
        ring.close()  # close is idempotent too

    def test_attach_sees_creator_geometry(self):
        ring = ShmRing.create("geom", slot_bytes=8192, n_slots=3)
        try:
            reader = ShmRing.attach(ring.name)
            assert reader.slot_bytes == 8192
            assert reader.n_slots == 3
            assert reader.frame_capacity == ring.frame_capacity
            reader.close()
        finally:
            ring.unlink()
            ring.close()

    def test_blob_round_trip_unlinks_on_read(self):
        parts = [b"header", bytes(range(200)), b"tail"]
        name, nbytes = write_blob("blob-test", parts)
        assert name in _live_segments()
        assert read_blob(name, nbytes) == b"".join(parts)
        # The reader unlinks the one-shot blob as it consumes it.
        assert name not in _live_segments()

    def test_reap_orphans_unlinks_stranded_segments(self):
        # Simulate a crashed worker: a prefixed segment nobody owns.
        seg = shared_memory.SharedMemory(
            name=f"{SEGMENT_PREFIX}stranded-test", create=True, size=128)
        shm_mod._disown_segment(seg)
        seg.close()
        assert f"{SEGMENT_PREFIX}stranded-test" in _live_segments()
        reaped = reap_orphans()
        assert f"{SEGMENT_PREFIX}stranded-test" in reaped
        assert f"{SEGMENT_PREFIX}stranded-test" not in _live_segments()
        assert reap_orphans() == []  # nothing left to reap


class TestTransportSegmentTurnover:
    def test_segments_survive_restart_with_fresh_names(
            self, fattree4_scenario):
        """kill() keeps the dead incarnation's rings (frames referenced
        by in-flight commands stay valid); restore() tears them down and
        respawns with fresh segments; close() leaves nothing behind."""
        part = contiguous_partition(fattree4_scenario.topology, 2)
        specs = [AgentSpec(a, fattree4_scenario, part, TraceLevel.FULL)
                 for a in range(2)]
        transport = ProcessTransport(shm=True)
        try:
            transport.launch(specs)
            transport.build_all()
            worker = transport._workers[1]
            old = {worker.ring_in.name, worker.ring_out.name}
            assert old <= _live_segments()
            payload = transport.snapshot_all(2)[1]

            transport.kill(1)
            assert old <= _live_segments(), \
                "kill must keep the stale-valid rings"

            transport.restore(1, payload, 2)
            worker = transport._workers[1]
            fresh = {worker.ring_in.name, worker.ring_out.name}
            assert not (fresh & old), "restore must mint fresh segments"
            assert fresh <= _live_segments()
            assert not (old & _live_segments()), \
                "restore must unlink the dead incarnation's rings"
            # The restored worker answers over its new rings.
            assert transport.snapshot_all(2)[1] is not None
        finally:
            transport.close()
        assert _live_segments() == set()


def test_full_run_leaves_clean_interpreter_and_shm():
    """End-to-end shm cluster run in a fresh interpreter: exit 0, no
    resource_tracker warnings or leak notices on stderr (Python prints
    both at interpreter shutdown, which in-process tests cannot see),
    and no segments left in /dev/shm."""
    code = (
        "from repro.cluster import DonsManager\n"
        "from repro.des.partition_types import contiguous_partition\n"
        "from repro.metrics import TraceLevel\n"
        "from repro.partition import ClusterSpec\n"
        "from repro.scenario import make_scenario\n"
        "from repro.topology import dumbbell\n"
        "from repro.traffic import Flow, Transport\n"
        "from repro.units import GBPS\n"
        "topo = dumbbell(4, edge_rate_bps=10 * GBPS,\n"
        "                bottleneck_rate_bps=10 * GBPS)\n"
        "flows = [Flow(i, i, 4 + i, 60_000, 0, Transport.DCTCP)\n"
        "         for i in range(4)]\n"
        "sc = make_scenario(topo, flows)\n"
        "part = contiguous_partition(topo, 2)\n"
        "run = DonsManager(sc, ClusterSpec.homogeneous(2), TraceLevel.FULL,\n"
        "                  transport='shm').run(partition=part)\n"
        "print(len(run.results.trace.entries))\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
    proc = subprocess.run([sys.executable, "-c", code], env=env,
                          capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr
    assert int(proc.stdout.strip()) > 0
    for symptom in ("resource_tracker", "leaked shared_memory",
                    "Traceback"):
        assert symptom not in proc.stderr, proc.stderr
    assert _live_segments() == set()
