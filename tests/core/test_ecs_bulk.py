"""Bulk columnar APIs: gather/scatter, chunk slices, command buffers."""

import pytest

from repro.core.ecs import CommandBuffer, consolidate, merge_buffers
from repro.core.ecs.components import CHUNK_ENTITIES, FieldSpec, SoATable
from repro.errors import ConfigError


def make_table(n=0):
    t = SoATable("t", [FieldSpec("a", 0), FieldSpec("b", -1)])
    for i in range(n):
        t.add(a=i, b=10 * i)
    return t


class TestBulkColumns:
    def test_column_is_the_raw_column(self):
        t = make_table(3)
        col = t.column("a")
        assert col is t.col("a")
        col[1] = 99
        assert t.get(1, "a") == 99

    def test_column_unknown_name_raises(self):
        t = make_table(1)
        with pytest.raises(ConfigError):
            t.column("missing")
        with pytest.raises(ConfigError):
            t.columns(["a", "missing"])

    def test_columns_bulk_handles(self):
        t = make_table(2)
        cols = t.columns(["b", "a"])
        assert set(cols) == {"a", "b"}
        assert cols["a"] is t.col("a")

    def test_gather_scatter_round_trip(self):
        t = make_table(8)
        idxs = [6, 0, 3]
        got = t.gather(idxs, ["a", "b"])
        assert got == {"a": [6, 0, 3], "b": [60, 0, 30]}
        t.scatter(idxs, "a", [-6, -0, -3])
        assert t.gather(idxs, ["a"])["a"] == [-6, 0, -3]
        # round-trip: scatter back what gather read
        t.scatter(idxs, "a", got["a"])
        assert t.col("a") == list(range(8))

    def test_gather_empty_idxs(self):
        t = make_table(4)
        assert t.gather([], ["a"]) == {"a": []}

    def test_scatter_length_mismatch_raises(self):
        t = make_table(4)
        with pytest.raises(ConfigError):
            t.scatter([0, 1], "a", [5])

    def test_slice_is_a_segment(self):
        t = make_table(10)
        assert t.slice("a", 3, 6) == [3, 4, 5]

    def test_chunk_slices_cover_boundaries(self):
        n = CHUNK_ENTITIES + 17
        t = SoATable("big", [FieldSpec("x", 0)])
        t.add_many(n)
        xs = t.col("x")
        for i in range(n):
            xs[i] = i
        pieces = list(t.chunk_slices(["x"]))
        assert [(s, e) for s, e, _ in pieces] == [
            (0, CHUNK_ENTITIES), (CHUNK_ENTITIES, n)
        ]
        rebuilt = []
        for start, end, cols in pieces:
            assert cols["x"] == xs[start:end]
            rebuilt.extend(cols["x"])
        assert rebuilt == xs

    def test_chunk_slices_validates_names(self):
        t = make_table(2)
        with pytest.raises(ConfigError):
            list(t.chunk_slices(["nope"]))


class TestCommandBuffers:
    def test_append_many_and_extend(self):
        buf = CommandBuffer()
        buf.append_many(3, ["x", "y"])
        buf.extend([(1, "z"), (3, "w")])
        assert buf.entries == [(3, "x"), (3, "y"), (1, "z"), (3, "w")]
        assert len(buf) == 4 and bool(buf)

    def test_empty_buffer_is_falsy(self):
        buf = CommandBuffer()
        assert not buf
        assert len(buf) == 0

    def test_consolidate_empty_buffers(self):
        sink = {}
        assert consolidate([], sink) == 0
        assert consolidate([CommandBuffer(), CommandBuffer()], sink) == 0
        assert sink == {}

    def test_consolidate_duplicate_targets_keeps_worker_order(self):
        a, b = CommandBuffer(), CommandBuffer()
        a.append(7, "a1")
        a.append(7, "a2")
        b.append(7, "b1")
        b.append(2, "b2")
        sink = {}
        assert consolidate([a, b], sink) == 4
        # same egress target fed by two workers: worker order, then
        # each worker's recorded order
        assert sink == {7: ["a1", "a2", "b1"], 2: ["b2"]}

    def test_merge_and_merge_buffers(self):
        a, b, c = CommandBuffer(), CommandBuffer(), CommandBuffer()
        a.append(0, 1)
        b.append_many(1, [2, 3])
        merged = merge_buffers([a, b, c])
        assert merged.entries == [(0, 1), (1, 2), (1, 3)]
        # merge() mutates and returns the receiver
        assert a.merge(b) is a
        assert a.entries == [(0, 1), (1, 2), (1, 3)]

    def test_merged_consolidation_equals_direct(self):
        bufs = []
        for w in range(3):
            buf = CommandBuffer()
            for i in range(4):
                buf.append(i % 2, (w, i))
            bufs.append(buf)
        direct, via_merge = {}, {}
        consolidate(bufs, direct)
        consolidate([merge_buffers(bufs)], via_merge)
        assert direct == via_merge
