"""Property-based tests for the ECS bulk APIs (hypothesis).

The columnar kernels lean on :class:`SoATable`'s bulk accessors and on
:class:`CommandBuffer` consolidation; these properties pin the algebra
the kernels assume: gather/scatter round-trips, chunk slices tile the
table exactly, bulk handles alias live storage, and consolidation is
insensitive to how writes were batched into buffers.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.core.ecs.commands import CommandBuffer, consolidate, merge_buffers
from repro.core.ecs.components import CHUNK_ENTITIES, FieldSpec, SoATable

SCHEMA = (FieldSpec("a", 0), FieldSpec("b", -1), FieldSpec("c", 0))
NAMES = tuple(f.name for f in SCHEMA)


def make_table(rows):
    table = SoATable("test", SCHEMA)
    for a, b, c in rows:
        table.add(a=a, b=b, c=c)
    return table


row_lists = st.lists(
    st.tuples(st.integers(), st.integers(), st.integers()),
    min_size=1, max_size=200,
)


class TestSoATableProperties:
    @given(rows=row_lists, data=st.data())
    def test_gather_scatter_round_trip(self, rows, data):
        """scatter(idxs, gather(idxs)) leaves every column unchanged,
        and gather returns values in idxs order."""
        table = make_table(rows)
        idxs = data.draw(st.lists(
            st.integers(0, len(rows) - 1), max_size=len(rows), unique=True))
        before = {name: list(table.col(name)) for name in NAMES}
        gathered = table.gather(idxs, NAMES)
        for name in NAMES:
            assert gathered[name] == [before[name][i] for i in idxs]
            table.scatter(idxs, name, gathered[name])
            assert table.col(name) == before[name]

    @given(rows=row_lists, data=st.data())
    def test_scatter_then_gather_reads_back(self, rows, data):
        table = make_table(rows)
        idxs = data.draw(st.lists(
            st.integers(0, len(rows) - 1), max_size=len(rows), unique=True))
        values = data.draw(st.lists(
            st.integers(), min_size=len(idxs), max_size=len(idxs)))
        table.scatter(idxs, "a", values)
        assert table.gather(idxs, ("a",))["a"] == values

    @given(n=st.integers(0, 3 * CHUNK_ENTITIES + 7))
    def test_chunk_slices_tile_the_table(self, n):
        """Chunks are disjoint, in order, cover [0, n) exactly, and the
        per-chunk segments concatenate back to the whole column."""
        table = SoATable("test", SCHEMA)
        table.add_many(n)
        col = table.col("a")
        for i in range(n):
            col[i] = i
        cursor = 0
        rebuilt = []
        for start, end, segs in table.chunk_slices(("a",)):
            assert start == cursor
            assert start < end
            assert end - start <= CHUNK_ENTITIES
            assert segs["a"] == col[start:end]
            rebuilt.extend(segs["a"])
            cursor = end
        assert cursor == n
        assert rebuilt == col
        assert table.chunk_count() == len(list(table.chunks()))

    @given(rows=row_lists)
    def test_column_handles_alias_storage(self, rows):
        """column()/col() return the live column: writes through one
        handle are visible through the other and via get(); slice() is
        a copy and never writes back."""
        table = make_table(rows)
        handle = table.column("b")
        raw = table.col("b")
        assert handle is raw
        handle[0] = 12345
        assert table.get(0, "b") == 12345
        snap = table.slice("b", 0, len(rows))
        snap[0] = -999
        assert table.get(0, "b") == 12345

    @given(rows=row_lists, data=st.data())
    def test_columns_bulk_handles(self, rows, data):
        table = make_table(rows)
        sub = data.draw(st.lists(st.sampled_from(NAMES), unique=True))
        handles = table.columns(sub)
        assert set(handles) == set(sub)
        for name in sub:
            assert handles[name] is table.col(name)


writes = st.lists(st.tuples(st.integers(0, 7), st.integers()), max_size=120)


def split_into_buffers(pairs, cuts):
    """Partition one write stream into consecutive per-worker buffers."""
    buffers = []
    prev = 0
    for cut in sorted(cuts) + [len(pairs)]:
        buf = CommandBuffer()
        buf.extend(pairs[prev:cut])
        buffers.append(buf)
        prev = cut
    return buffers


class TestCommandBufferProperties:
    @given(pairs=writes, data=st.data())
    def test_consolidation_ignores_batching(self, pairs, data):
        """However a write stream is split across workers — and whether
        each worker used append / append_many / extend — consolidating
        in worker order yields the same per-target lists."""
        cuts = data.draw(st.lists(st.integers(0, len(pairs)), max_size=5))
        buffers = split_into_buffers(pairs, cuts)

        reference = CommandBuffer()
        for t, item in pairs:
            reference.append(t, item)
        expected = {}
        consolidate([reference], expected)

        sink = {}
        assert consolidate(buffers, sink) == len(pairs)
        assert sink == expected

        merged = merge_buffers(buffers)
        assert merged.entries == reference.entries

    @given(pairs=writes)
    def test_append_many_matches_appends(self, pairs):
        by_target = {}
        for t, item in pairs:
            by_target.setdefault(t, []).append(item)
        one_by_one = CommandBuffer()
        bulk = CommandBuffer()
        for t in sorted(by_target):
            for item in by_target[t]:
                one_by_one.append(t, item)
            bulk.append_many(t, by_target[t])
        assert bulk.entries == one_by_one.entries
        assert len(bulk) == len(pairs)
        assert bool(bulk) == bool(pairs)
