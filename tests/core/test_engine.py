"""The DOD engine: window mechanics, LCC invariants, results parity."""

import dataclasses

import pytest

from repro.core.engine import DodEngine, run_dons
from repro.des import run_baseline
from repro.metrics import TraceLevel
from repro.scenario import make_scenario
from repro.topology import dumbbell
from repro.traffic import Flow, Transport
from repro.units import GBPS, us


class TestWindowMechanics:
    def test_lookahead_is_min_link_delay(self, dumbbell_scenario):
        eng = DodEngine(dumbbell_scenario)
        assert eng.lookahead == dumbbell_scenario.topology.min_link_delay_ps()

    def test_deliveries_always_land_in_future_windows(self, dumbbell_scenario):
        """The LCC invariant: nothing is inserted into the current or a
        past window."""
        eng = DodEngine(dumbbell_scenario)
        eng.build()
        original_insert = eng._insert
        current_window = [-1]

        def guarded(t, node, entry):
            win = eng._window_of(t)
            assert win > current_window[0], (
                f"entry for window {win} inserted while running "
                f"{current_window[0]}"
            )
            original_insert(t, node, entry)

        eng._insert = guarded
        while True:
            nxt = eng._next_window(current_window[0])
            if nxt is None:
                break
            current_window[0] = nxt
            eng.process_window(nxt)
        eng.finalize()
        assert eng.results.completed() == 4

    def test_window_breakdown_records_busy_windows(self, dumbbell_scenario):
        res = run_dons(dumbbell_scenario)
        assert res.window_breakdown
        for start, ack, send, fwd, tx in res.window_breakdown:
            assert start % dumbbell_scenario.lookahead_ps == 0
            assert ack + send + fwd + tx > 0

    def test_idle_gaps_are_skipped(self):
        """Two bursts separated by a long gap must not iterate every
        intermediate window."""
        topo = dumbbell(1, edge_rate_bps=10 * GBPS)
        flows = [Flow(0, 0, 1, 3_000, 0, Transport.UDP),
                 Flow(1, 1, 0, 3_000, us(5_000), Transport.UDP)]
        sc = make_scenario(topo, flows)
        eng = DodEngine(sc)
        res = eng.run()
        busy = len(res.window_breakdown)
        assert busy < 200, f"engine visited {busy} windows for 2 tiny bursts"
        assert res.completed() == 2

    def test_max_windows_guard(self, dumbbell_scenario):
        eng = DodEngine(dumbbell_scenario, max_windows=5)
        res = eng.run()
        assert len(res.window_breakdown) <= 5
        assert res.completed() < 4


class TestParityWithBaseline:
    def test_results_match(self, fattree4_scenario):
        a = run_baseline(fattree4_scenario)
        b = run_dons(fattree4_scenario)
        assert a.fcts_ps() == b.fcts_ps()
        assert a.events.total == b.events.total
        assert a.node_events == b.node_events
        assert a.marks == b.marks
        assert a.tx_bytes == b.tx_bytes

    def test_workers_do_not_change_results(self, fattree4_scenario):
        one = run_dons(fattree4_scenario, TraceLevel.FULL, workers=1)
        four = run_dons(fattree4_scenario, TraceLevel.FULL, workers=4)
        assert one.trace.sorted_entries() == four.trace.sorted_entries()
        assert one.rtt_samples == four.rtt_samples

    def test_duration_cutoff(self, dumbbell_scenario):
        sc = dataclasses.replace(dumbbell_scenario, duration_ps=us(50))
        a = run_baseline(sc, TraceLevel.FULL)
        b = run_dons(sc, TraceLevel.FULL)
        # Both engines stop within one lookahead of the cutoff.
        assert abs(a.end_time_ps - b.end_time_ps) <= sc.lookahead_ps
        assert b.end_time_ps <= us(50) + sc.lookahead_ps
