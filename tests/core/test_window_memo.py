"""Window-signature memoization: lockstep signatures, digest identity
with the cache on/off, counter accounting, and checkpoint invalidation.

The fidelity bar is the same as everywhere else in the repository: the
fast-forward path must be byte-invisible.  ``window_signature()`` (the
backend-stable state hash the cache design keys on) must agree across
ECS backends and ``batch_windows`` settings at every shared cursor, and
``trace_digest()`` must be identical with the memo cache on and off.
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.checkpoint import (
    CheckpointingEngine, restore_checkpoint, take_checkpoint,
)
from repro.core.engine import DodEngine
from repro.metrics import TraceLevel
from repro.scenario import make_scenario
from repro.topology import dumbbell
from repro.traffic import Flow, Transport
from repro.units import GBPS, us


def steady_scenario(n_pairs=4, size=600_000, edge=12 * GBPS):
    """Drop-free periodic UDP permutation: the memo's home regime.

    A 12 Gbps NIC serializes a 1500 B frame in exactly 1 us — one
    lookahead window — so after the pipeline fills, every window's
    signature repeats and the cache hits until the flows drain.
    """
    topo = dumbbell(n_pairs, edge_rate_bps=edge,
                    bottleneck_rate_bps=100 * GBPS, delay_ps=us(1))
    flows = [Flow(i, i, n_pairs + i, size, 0, Transport.UDP)
             for i in range(n_pairs)]
    return make_scenario(topo, flows, name=f"steady-{n_pairs}")


@st.composite
def memo_scenarios(draw):
    """Small mixed scenarios: some memo-eligible, some not — the
    signature lockstep must hold regardless."""
    pairs = draw(st.integers(min_value=2, max_value=4))
    edge = draw(st.sampled_from([10, 12])) * GBPS
    bottleneck = draw(st.sampled_from([2, 10, 100])) * GBPS
    topo = dumbbell(pairs, edge_rate_bps=edge,
                    bottleneck_rate_bps=bottleneck,
                    delay_ps=us(draw(st.integers(1, 3))))
    hosts = topo.hosts
    flows = []
    for i in range(draw(st.integers(min_value=1, max_value=2 * pairs))):
        src = hosts[draw(st.integers(0, len(hosts) - 1))]
        dst = [h for h in hosts if h != src][
            draw(st.integers(0, len(hosts) - 2))]
        flows.append(Flow(
            i, src, dst,
            size_bytes=draw(st.integers(3_000, 90_000)),
            start_ps=draw(st.integers(0, 10)) * us(1),
            transport=draw(st.sampled_from([Transport.UDP,
                                            Transport.DCTCP])),
        ))
    return make_scenario(topo, flows)


def _signatures_by_cursor(scenario, backend, batch, ffwd=False):
    """Map of window cursor -> state signature over one full run."""
    engine = DodEngine(scenario, TraceLevel.NONE, backend=backend,
                       batch_windows=batch, ffwd=ffwd)
    engine.build()
    sigs = {engine._cursor: engine.window_signature()}
    while True:
        # advance() returns False when the run drains mid-batch even
        # though windows ran; progress is what ends the loop.
        before = engine._windows_run
        engine.advance()
        if engine._windows_run == before:
            break
        sigs[engine._cursor] = engine.window_signature()
    return sigs


class TestSignatureLockstep:
    @given(memo_scenarios())
    @settings(max_examples=10, deadline=None)
    def test_signature_identical_across_backends_and_batch(self, scenario):
        """The backend-stability contract the memo cache rests on:
        python/numpy x K in {1, 8} agree at every shared cursor."""
        runs = {
            (backend, batch): _signatures_by_cursor(scenario, backend, batch)
            for backend in ("python", "numpy")
            for batch in (1, 8)
        }
        ref = runs[("python", 1)]
        for (backend, batch), sigs in runs.items():
            shared = set(ref) & set(sigs)
            assert shared, (backend, batch)
            for cursor in shared:
                assert sigs[cursor] == ref[cursor], \
                    f"{backend}/K={batch} signature diverged at {cursor}"
            # every run drains to the same final cursor and state
            assert max(sigs) == max(ref)
            assert sigs[max(sigs)] == ref[max(ref)]

    def test_ffwd_apply_preserves_state_signature(self):
        """A fast-forwarded window must leave the engine in the same
        state an executed one would — checked cursor by cursor."""
        scenario = steady_scenario()
        plain = _signatures_by_cursor(scenario, "numpy", 1, ffwd=False)
        ffwd = _signatures_by_cursor(scenario, "numpy", 1, ffwd=True)
        assert ffwd == plain


class TestDigestIdentity:
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    @pytest.mark.parametrize("batch", [1, 8])
    def test_memo_on_off_trace_digest_identical(self, backend, batch):
        scenario = steady_scenario()
        digests = {}
        counters = {}
        for ffwd in (False, True):
            engine = DodEngine(scenario, TraceLevel.FULL, backend=backend,
                               batch_windows=batch, ffwd=ffwd)
            engine.run()
            digests[ffwd] = engine.bus.trace_digest()
            counters[ffwd] = dict(engine.bus.counters)
        assert digests[True] == digests[False]
        assert counters[True]["memo.hit"] > 0
        assert "memo.hit" not in counters[False]

    def test_memo_counters_account_for_every_window(self):
        scenario = steady_scenario()
        engine = DodEngine(scenario, TraceLevel.NONE, backend="numpy",
                           ffwd=True, telemetry=True)
        results = engine.run()
        c = engine.bus.counters
        handled = (c.get("memo.hit", 0) + c.get("memo.miss", 0)
                   + c.get("memo.ineligible", 0)
                   + c.get("memo.uncacheable", 0))
        assert handled == c["windows"]
        assert c["memo.hit"] > c["memo.miss"] > 0
        assert c.get("memo.validate", 0) > 0
        assert c.get("memo.validate_fail", 0) == 0
        assert results.drops == 0 and results.completed() == 4
        hist = engine.bus.metrics.histograms.get("memo.apply_ms")
        assert hist is not None and hist.count == c["memo.hit"] - \
            c.get("memo.validate", 0)

    def test_env_var_enables_ffwd(self, monkeypatch):
        monkeypatch.setenv("REPRO_FFWD", "1")
        engine = DodEngine(steady_scenario(), TraceLevel.NONE,
                           backend="numpy")
        assert engine.ffwd and os.environ["REPRO_FFWD"] == "1"
        engine.run()
        assert engine.bus.counters.get("memo.hit", 0) > 0

    def test_ineligible_scenarios_never_build_a_cache(self):
        """Static gates: no UDP flow -> no memo, zero overhead."""
        topo = dumbbell(2, edge_rate_bps=10 * GBPS,
                        bottleneck_rate_bps=2 * GBPS, delay_ps=us(1))
        flows = [Flow(0, 0, 2, 60_000, 0, Transport.DCTCP)]
        scenario = make_scenario(topo, flows)
        engine = DodEngine(scenario, TraceLevel.NONE, ffwd=True)
        engine.run()
        assert engine._memo is None
        assert "memo.hit" not in engine.bus.counters


class TestCheckpointInteraction:
    def test_restore_invalidates_memo_cache(self):
        scenario = steady_scenario()
        engine = DodEngine(scenario, TraceLevel.FULL, backend="numpy",
                           ffwd=True)
        engine.build()
        current = -1
        for _ in range(30):
            nxt = engine._next_window(current)
            if nxt is None:
                break
            current = nxt
            assert engine._memo.run_window(current) or True
        assert engine._memo.cache, "warm cache expected before snapshot"
        ckpt = take_checkpoint(engine, current)
        restore_checkpoint(engine, ckpt)
        assert engine._memo.cache == {}, "restore must invalidate the cache"
        engine.pool.close()

    def test_resume_with_ffwd_matches_uninterrupted_digest(self):
        scenario = steady_scenario()
        reference = DodEngine(scenario, TraceLevel.FULL, backend="numpy",
                              ffwd=True)
        reference.run()

        engine = DodEngine(scenario, TraceLevel.FULL, backend="numpy",
                           ffwd=True)
        engine.build()
        current = -1
        for _ in range(5):
            nxt = engine._next_window(current)
            if nxt is None:
                break
            current = nxt
            engine.process_window(current)
        ckpt = take_checkpoint(engine, current)
        engine.pool.close()

        fresh = CheckpointingEngine(scenario, TraceLevel.FULL,
                                    backend="numpy", ffwd=True)
        results = fresh.resume_from(ckpt)
        assert results.trace is not None
        assert fresh.bus.trace_digest() == reference.bus.trace_digest()
        assert fresh.bus.counters.get("memo.hit", 0) > 0
