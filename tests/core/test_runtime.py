"""Worker pool: deterministic ordering, accounting, chunking."""

import threading

import pytest

from repro.core.runtime import WorkerPool, chunk_ranges


class TestWorkerPool:
    def test_serial_map_in_order(self):
        with WorkerPool(1) as pool:
            out = pool.map("t", lambda x: x * x, [3, 1, 2])
        assert out == [9, 1, 4]

    def test_threaded_map_preserves_task_order(self):
        with WorkerPool(4) as pool:
            out = pool.map("t", lambda x: x * 2, list(range(64)))
        assert out == [2 * i for i in range(64)]

    def test_threads_actually_used(self):
        seen = set()

        def f(x):
            seen.add(threading.get_ident())
            return x

        with WorkerPool(4) as pool:
            pool.map("t", f, list(range(256)))
        assert len(seen) >= 2

    def test_stats_accounting(self):
        with WorkerPool(1) as pool:
            pool.map("ack", lambda x: x, [1, 2], sizes=[10, 20])
            pool.map("ack", lambda x: x, [3], sizes=[5])
        bus = pool.bus
        assert bus.counters["pool.tasks"] == 3
        assert bus.counters["pool.items"] == 35
        assert bus.totals["ack"].tasks == 3
        assert bus.totals["ack"].items == 35

    def test_empty_tasks(self):
        with WorkerPool(2) as pool:
            assert pool.map("t", lambda x: x, []) == []

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            WorkerPool(0)


class TestChunkRanges:
    def test_exact_split(self):
        assert chunk_ranges(10, 2) == [(0, 5), (5, 10)]

    def test_remainder_spread(self):
        ranges = chunk_ranges(10, 3)
        assert ranges == [(0, 4), (4, 7), (7, 10)]

    def test_more_parts_than_items(self):
        assert chunk_ranges(2, 8) == [(0, 1), (1, 2)]

    def test_empty(self):
        assert chunk_ranges(0, 4) == []

    def test_covers_everything_exactly_once(self):
        for n in (1, 7, 100, 1023):
            for parts in (1, 3, 16):
                covered = []
                for a, b in chunk_ranges(n, parts):
                    covered.extend(range(a, b))
                assert covered == list(range(n))
