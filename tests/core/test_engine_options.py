"""Engine ablation knobs: lookahead override and system order."""

import pytest

from repro.core.engine import DodEngine, run_dons
from repro.des import run_baseline
from repro.errors import SimulationError
from repro.metrics import TraceLevel


class TestLookaheadOverride:
    @pytest.mark.parametrize("divisor", [2, 4, 10])
    def test_smaller_lookahead_still_exact(self, dumbbell_scenario, divisor):
        reference = run_baseline(dumbbell_scenario, TraceLevel.FULL)
        la = dumbbell_scenario.lookahead_ps // divisor
        res = DodEngine(dumbbell_scenario, TraceLevel.FULL,
                        lookahead_override=la).run()
        assert res.trace.sorted_entries() == reference.trace.sorted_entries()

    def test_smaller_lookahead_more_windows(self, dumbbell_scenario):
        full = DodEngine(dumbbell_scenario).run()
        half = DodEngine(dumbbell_scenario,
                         lookahead_override=dumbbell_scenario.lookahead_ps // 2).run()
        assert len(half.window_breakdown) > len(full.window_breakdown)

    def test_too_large_override_rejected(self, dumbbell_scenario):
        with pytest.raises(SimulationError):
            DodEngine(dumbbell_scenario,
                      lookahead_override=dumbbell_scenario.lookahead_ps + 1)

    def test_zero_override_rejected(self, dumbbell_scenario):
        with pytest.raises(SimulationError):
            DodEngine(dumbbell_scenario, lookahead_override=0)


class TestSystemOrder:
    def test_paper_order_matches_ground_truth(self, fattree4_scenario):
        truth = run_baseline(fattree4_scenario, TraceLevel.FULL)
        res = DodEngine(fattree4_scenario, TraceLevel.FULL,
                        system_order="paper").run()
        assert res.trace.digest() == truth.trace.digest()

    def test_naive_order_diverges_but_completes(self, fattree4_scenario):
        truth = run_baseline(fattree4_scenario, TraceLevel.FULL)
        res = DodEngine(fattree4_scenario, TraceLevel.FULL,
                        system_order="naive").run()
        assert res.trace.digest() != truth.trace.digest()
        assert res.completed() == len(fattree4_scenario.flows)

    def test_unknown_order_rejected(self, dumbbell_scenario):
        with pytest.raises(SimulationError):
            DodEngine(dumbbell_scenario, system_order="chaotic")


class TestRenoTransport:
    def test_reno_trace_equal_and_distinct_from_dctcp(self):
        from repro.scenario import make_scenario
        from repro.topology import dumbbell
        from repro.traffic import Flow, Transport
        from repro.units import GBPS
        topo = dumbbell(4, edge_rate_bps=10 * GBPS,
                        bottleneck_rate_bps=2 * GBPS)

        def run_with(transport):
            flows = [Flow(i, i, 4 + i, 120_000, 0, transport)
                     for i in range(4)]
            sc = make_scenario(topo, flows)
            a = run_baseline(sc, TraceLevel.FULL)
            b = run_dons(sc, TraceLevel.FULL)
            assert a.trace.digest() == b.trace.digest()
            return a

        reno = run_with(Transport.RENO)
        dctcp = run_with(Transport.DCTCP)
        assert reno.marks > 0 and dctcp.marks > 0
        # Reno halves on any marked window; DCTCP cuts proportionally —
        # under identical marking Reno is the slower of the two.
        assert sum(reno.fcts_ps()) > sum(dctcp.fcts_ps())
