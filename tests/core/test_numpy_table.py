"""Lockstep conformance of the NumPy table against the Python reference.

:class:`NumpyTable` must be observationally identical to
:class:`SoATable` through the whole bulk API — same values, same value
*types* at the scalar boundary (plain Python ints, never ``np.int64``),
same error contract — because the vectorized systems' byte-identical-
trace claim rests on it.  These tests drive both tables through the
same operation sequences (hypothesis-generated and hand-picked edge
cases: growth boundaries, empty index arrays, object-dtype columns,
resident working-set flushes) and assert every observable agrees.
"""

import pickle

import pytest

np = pytest.importorskip("numpy")
hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.core.ecs.commands import (
    CommandBuffer, GROUPED_CONSOLIDATE_MIN, consolidate, consolidate_grouped,
)
from repro.core.ecs.components import CHUNK_ENTITIES, FieldSpec, SoATable
from repro.core.ecs.entity import BACKENDS, make_table
from repro.core.ecs.numpy_table import _INITIAL_CAPACITY, NumpyTable
from repro.errors import ColumnIndexError, ConfigError

#: Mixed dtypes on purpose: int64, float64, and two object columns (bool
#: defaults map to object so Python bools round-trip unchanged).
SCHEMA = (FieldSpec("i", 0), FieldSpec("f", 0.0),
          FieldSpec("flag", False), FieldSpec("obj", None))
NAMES = tuple(f.name for f in SCHEMA)

#: int64-safe scalars (the numpy backend stores int columns as int64).
ints = st.integers(min_value=-(2 ** 62), max_value=2 ** 62)
floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
objs = st.one_of(st.none(), st.booleans(),
                 st.frozensets(st.integers(0, 5), max_size=3))

row_dicts = st.fixed_dictionaries(
    {"i": ints, "f": floats, "flag": st.booleans(), "obj": objs})
row_lists = st.lists(row_dicts, min_size=1, max_size=64)


def make_pair(rows=()):
    """The same content in both backends."""
    ref, cand = SoATable("t", SCHEMA), NumpyTable("t", SCHEMA)
    for row in rows:
        ref.add(**row)
        cand.add(**row)
    return ref, cand


def assert_tables_equal(ref, cand):
    assert len(ref) == len(cand)
    for name in NAMES:
        ref_col = list(ref.col(name))
        cand_col = cand.column(name).tolist()
        assert ref_col == cand_col, name
        for r, c in zip(ref_col, cand_col):
            assert type(r) is type(c), (name, r, c)


class TestLockstep:
    @given(rows=row_lists, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_add_gather_matches(self, rows, data):
        ref, cand = make_pair(rows)
        assert_tables_equal(ref, cand)
        idxs = data.draw(st.lists(
            st.integers(0, len(rows) - 1), max_size=2 * len(rows)))
        names = data.draw(st.lists(st.sampled_from(NAMES),
                                   min_size=1, unique=True))
        assert ref.gather(idxs, names) == cand.gather(idxs, names)

    @given(rows=row_lists, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_scatter_matches(self, rows, data):
        ref, cand = make_pair(rows)
        idxs = data.draw(st.lists(
            st.integers(0, len(rows) - 1), max_size=len(rows), unique=True))
        name = data.draw(st.sampled_from(NAMES))
        value_of = {"i": ints, "f": floats, "flag": st.booleans(),
                    "obj": objs}[name]
        values = data.draw(st.lists(value_of, min_size=len(idxs),
                                    max_size=len(idxs)))
        ref.scatter(idxs, name, values)
        cand.scatter(idxs, name, values)
        assert_tables_equal(ref, cand)

    @given(rows=row_lists, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_get_set_slice_matches(self, rows, data):
        ref, cand = make_pair(rows)
        idx = data.draw(st.integers(0, len(rows) - 1))
        name = data.draw(st.sampled_from(NAMES))
        assert ref.get(idx, name) == cand.get(idx, name)
        assert type(ref.get(idx, name)) is type(cand.get(idx, name))
        assert ref.load_row(idx) == cand.load_row(idx)
        start = data.draw(st.integers(0, len(rows)))
        end = data.draw(st.integers(start, len(rows)))
        assert ref.slice(name, start, end) == cand.slice(name, start, end)
        ref.set(idx, "i", 42)
        cand.set(idx, "i", 42)
        assert_tables_equal(ref, cand)

    @given(count=st.integers(0, 3 * _INITIAL_CAPACITY))
    @settings(max_examples=40, deadline=None)
    def test_add_many_defaults_match(self, count):
        ref, cand = make_pair()
        assert list(ref.add_many(count)) == list(cand.add_many(count))
        assert_tables_equal(ref, cand)

    def test_growth_boundaries(self):
        """Appends that land exactly on / straddle capacity doublings."""
        ref, cand = make_pair()
        for k in range(4 * _INITIAL_CAPACITY + 1):
            row = {"i": k, "f": k / 2, "flag": bool(k % 2), "obj": None}
            assert ref.add(**row) == cand.add(**row)
        assert_tables_equal(ref, cand)
        # One more bulk append across another doubling.
        ref.add_many(3 * _INITIAL_CAPACITY)
        cand.add_many(3 * _INITIAL_CAPACITY)
        assert_tables_equal(ref, cand)

    def test_chunk_slices_match(self):
        n = CHUNK_ENTITIES + 7
        ref, cand = make_pair()
        ref.add_many(n)
        cand.add_many(n)
        for k in range(n):
            ref.set(k, "i", k)
            cand.set(k, "i", k)
        ref_pieces = [(s, e, cols["i"])
                      for s, e, cols in ref.chunk_slices(["i"])]
        cand_pieces = [(s, e, cols["i"])
                      for s, e, cols in cand.chunk_slices(["i"])]
        assert ref_pieces == cand_pieces
        assert ref.chunk_count() == cand.chunk_count()
        assert list(ref.chunks()) == list(cand.chunks())


class TestEdgeCases:
    def test_empty_index_gather_scatter(self):
        ref, cand = make_pair([{"i": 1, "f": 1.0, "flag": True, "obj": None}])
        assert ref.gather([], ["i", "f"]) == cand.gather([], ["i", "f"])
        ref.scatter([], "i", [])
        cand.scatter([], "i", [])
        assert_tables_equal(ref, cand)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("bad", [[-1], [3], [0, 7], [-5, 1]])
    def test_out_of_range_raises_uniformly(self, backend, bad):
        table = make_table(backend, "t", SCHEMA)
        table.add_many(3)
        with pytest.raises(ColumnIndexError):
            table.gather(bad, ["i"])
        with pytest.raises(ColumnIndexError):
            table.scatter(bad, "i", [0] * len(bad))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_scatter_length_mismatch_raises(self, backend):
        table = make_table(backend, "t", SCHEMA)
        table.add_many(3)
        with pytest.raises(ConfigError):
            table.scatter([0, 1], "i", [5])

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_unknown_field_raises(self, backend):
        table = make_table(backend, "t", SCHEMA)
        with pytest.raises(ConfigError):
            table.column("missing")
        with pytest.raises(ConfigError):
            table.add(missing=1)

    def test_unknown_backend_raises(self):
        with pytest.raises(ConfigError):
            make_table("fortran", "t", SCHEMA)

    def test_object_columns_store_identity(self):
        _, cand = make_pair()
        payload = {0, 1, 2}
        idx = cand.add(obj=payload)
        assert cand.get(idx, "obj") is payload
        cand.scatter([idx], "obj", [{"k": [1, 2]}])
        assert cand.get(idx, "obj") == {"k": [1, 2]}


class TestResidentWorkingSet:
    def test_resident_mutations_visible_through_bulk_api(self):
        ref, cand = make_pair(
            [{"i": k, "f": 0.0, "flag": False, "obj": None}
             for k in range(5)])
        view = cand.resident(["i", "flag"])
        assert view["i"] == [0, 1, 2, 3, 4]
        view["i"][2] = 99
        view["flag"][0] = True
        ref.set(2, "i", 99)
        ref.set(0, "flag", True)
        # Any array-level read flushes the lists back first.
        assert cand.get(2, "i") == 99
        assert cand.gather([0], ["flag"]) == {"flag": [True]}
        assert_tables_equal(ref, cand)

    def test_resident_view_is_cached(self):
        _, cand = make_pair(
            [{"i": 1, "f": 0.0, "flag": False, "obj": None}])
        a = cand.resident(["i", "f"])
        b = cand.resident(["i", "f"])
        assert a is b
        assert cand.resident(["i"])["i"] is a["i"]

    def test_pickle_flushes_resident_state(self):
        _, cand = make_pair(
            [{"i": k, "f": 0.0, "flag": False, "obj": None}
             for k in range(3)])
        cand.resident(["i"])["i"][1] = -7
        clone = pickle.loads(pickle.dumps(cand))
        assert clone.column("i").tolist() == [0, -7, 2]
        assert len(clone) == 3
        # The clone keeps working: growth and resident caching intact.
        clone.add_many(2 * _INITIAL_CAPACITY)
        assert clone.get(1, "i") == -7

    def test_unknown_field_in_resident_raises(self):
        _, cand = make_pair()
        with pytest.raises(ConfigError):
            cand.resident(["missing"])


buffer_lists = st.lists(
    st.lists(st.tuples(st.integers(0, 9), st.integers()), max_size=40),
    max_size=6,
)


class TestGroupedConsolidate:
    @given(entry_lists=buffer_lists)
    @settings(max_examples=60, deadline=None)
    def test_grouped_equals_reference(self, entry_lists):
        buffers = []
        for entries in entry_lists:
            buf = CommandBuffer()
            buf.extend(entries)
            buffers.append(buf)
        plain, grouped = {}, {}
        assert consolidate(buffers, plain) == \
            consolidate_grouped(buffers, grouped)
        assert plain == grouped

    def test_grouped_straddles_threshold(self):
        """Identical semantics just below and above the vectorized cut."""
        for n in (GROUPED_CONSOLIDATE_MIN - 1, GROUPED_CONSOLIDATE_MIN,
                  GROUPED_CONSOLIDATE_MIN + 1):
            buf = CommandBuffer()
            for k in range(n):
                buf.append(k % 3, ("item", k))
            plain, grouped = {}, {}
            assert consolidate([buf], plain) == \
                consolidate_grouped([buf], grouped) == n
            assert plain == grouped
