"""Checkpointing (§8): pause/resume is observationally transparent."""

import pytest

from repro.core.checkpoint import (
    Checkpoint, CheckpointingEngine, CheckpointStore, FORMAT,
    restore_checkpoint, take_checkpoint,
)
from repro.core.engine import DodEngine, run_dons
from repro.errors import SimulationError
from repro.metrics import TraceLevel


def run_interrupted(scenario, stop_after_windows):
    """Run to window N, checkpoint, resume in a FRESH engine."""
    eng = DodEngine(scenario, TraceLevel.FULL)
    eng.build()
    current = -1
    done = 0
    while done < stop_after_windows:
        nxt = eng._next_window(current)
        if nxt is None:
            break
        current = nxt
        eng.process_window(current)
        done += 1
    ckpt = take_checkpoint(eng, current)
    # The "crash": the original engine is discarded entirely.
    del eng
    fresh = CheckpointingEngine(scenario, TraceLevel.FULL)
    return fresh.resume_from(ckpt)


@pytest.mark.parametrize("stop_after", [1, 7, 40])
def test_resume_reproduces_uninterrupted_trace(dumbbell_scenario, stop_after):
    reference = run_dons(dumbbell_scenario, TraceLevel.FULL)
    resumed = run_interrupted(dumbbell_scenario, stop_after)
    assert resumed.trace.sorted_entries() == reference.trace.sorted_entries()
    assert resumed.fcts_ps() == reference.fcts_ps()
    assert resumed.rtt_samples == reference.rtt_samples


def test_resume_fattree_with_ecmp(fattree4_scenario):
    reference = run_dons(fattree4_scenario, TraceLevel.FULL)
    resumed = run_interrupted(fattree4_scenario, 15)
    assert resumed.trace.digest() == reference.trace.digest()


def test_checkpoint_rejects_wrong_scenario(dumbbell_scenario,
                                           fattree4_scenario):
    eng = DodEngine(dumbbell_scenario)
    eng.build()
    ckpt = take_checkpoint(eng, 0)
    other = DodEngine(fattree4_scenario)
    other.build()
    with pytest.raises(SimulationError):
        restore_checkpoint(other, ckpt)


def test_checkpoint_rejects_bad_format(dumbbell_scenario):
    eng = DodEngine(dumbbell_scenario)
    eng.build()
    ckpt = take_checkpoint(eng, 0)
    bad = Checkpoint("v999", ckpt.scenario_name, 0, ckpt.payload)
    with pytest.raises(SimulationError):
        restore_checkpoint(eng, bad)


class TestStore:
    def test_replicated_save_and_load(self, tmp_path, dumbbell_scenario):
        locations = [str(tmp_path / f"replica{i}") for i in range(3)]
        store = CheckpointStore(locations)
        eng = DodEngine(dumbbell_scenario)
        eng.build()
        ckpt = take_checkpoint(eng, 0)
        paths = store.save("run1", ckpt)
        assert len(paths) == 3
        loaded = store.load("run1")
        assert loaded.digest() == ckpt.digest()

    def test_survives_replica_loss(self, tmp_path, dumbbell_scenario):
        locations = [str(tmp_path / f"replica{i}") for i in range(3)]
        store = CheckpointStore(locations)
        eng = DodEngine(dumbbell_scenario)
        eng.build()
        ckpt = take_checkpoint(eng, 0)
        paths = store.save("run1", ckpt)
        # First two replicas corrupted / lost.
        import os
        os.remove(paths[0])
        with open(paths[1], "wb") as fh:
            fh.write(b"garbage")
        loaded = store.load("run1")
        assert loaded.digest() == ckpt.digest()

    def test_all_replicas_lost(self, tmp_path):
        store = CheckpointStore([str(tmp_path / "only")])
        with pytest.raises(SimulationError):
            store.load("missing")

    def test_empty_locations_rejected(self):
        with pytest.raises(SimulationError):
            CheckpointStore([])


def test_periodic_checkpointing_transparent(tmp_path, dumbbell_scenario):
    reference = run_dons(dumbbell_scenario, TraceLevel.FULL)
    store = CheckpointStore([str(tmp_path / "a"), str(tmp_path / "b")])
    eng = CheckpointingEngine(dumbbell_scenario, TraceLevel.FULL,
                              store=store, every_windows=10)
    res = eng.run()
    assert eng.checkpoints_taken > 0
    assert res.trace.sorted_entries() == reference.trace.sorted_entries()
    # The last snapshot is resumable.
    loaded = store.load("run")
    fresh = CheckpointingEngine(dumbbell_scenario, TraceLevel.FULL)
    resumed = fresh.resume_from(loaded)
    assert resumed.trace.sorted_entries() == reference.trace.sorted_entries()
