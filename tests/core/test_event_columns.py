"""Lockstep conformance of the columnar event store.

:class:`EventColumns` replaced the engine's scalar nested-dict calendar
(``calendar[window][node] -> [entry, ...]`` plus a window min-heap).
The byte-identical-trace claim rests on the store reproducing the scalar
structure's observable behavior exactly: grouping order, duration-cut
filtering, scheduling decisions, structural edits.  These tests drive
the store and an in-test scalar reference model through the same
hypothesis-generated operation sequences and assert every observable
agrees — mirroring ``test_numpy_table.py``'s table lockstep.

The NumPy side is covered twice: :meth:`EventColumns.as_arrays` must
view the very same column values, and the byte stream behind
``signature_bytes`` must equal what ``ndarray.tobytes()`` produces for
the same columns (the property that makes ``window_signature()``
backend-stable).
"""

import heapq
import struct

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.core.events import EventColumns
from repro.core.window import (
    ENTRY_ARRIVAL, ENTRY_FLOW_START, ENTRY_TIMER, ENTRY_UDP, WindowContext,
)

# --- strategies -----------------------------------------------------------

rows = st.tuples(*([st.integers(0, 2 ** 40)] * 9))

entries = st.one_of(
    st.tuples(st.just(ENTRY_ARRIVAL), st.integers(0, 10 ** 6),
              st.integers(0, 3), rows),
    st.tuples(st.just(ENTRY_FLOW_START), st.integers(0, 10 ** 6),
              st.integers(0, 50)),
    st.tuples(st.just(ENTRY_TIMER), st.integers(-1, 50)),
    st.tuples(st.just(ENTRY_UDP), st.integers(0, 50)),
)

inserts = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 9), entries),
    max_size=80,
)


class ScalarCalendar:
    """The engine's pre-columnar pending store, verbatim semantics."""

    def __init__(self):
        self.calendar = {}
        self.heap = []
        self.queued = set()

    def insert(self, win, node, entry):
        self.calendar.setdefault(win, {}).setdefault(node, []).append(entry)
        if win not in self.queued:
            self.queued.add(win)
            heapq.heappush(self.heap, win)

    def _prune(self, current):
        while self.heap and self.heap[0] <= current:
            self.queued.discard(heapq.heappop(self.heap))

    def next_window(self, current, active):
        self._prune(current)
        candidates = []
        if active:
            candidates.append(current + 1)
        if self.heap:
            candidates.append(self.heap[0])
        if not candidates:
            return None
        nxt = min(candidates)
        if self.heap and self.heap[0] == nxt:
            self.queued.discard(heapq.heappop(self.heap))
        return nxt

    def pop_window(self, win, t_cut=None):
        grouped = self.calendar.pop(win, {})
        if t_cut is None:
            return grouped
        return {
            node: kept for node, entries in grouped.items()
            if (kept := [
                e for e in entries
                if e[0] > ENTRY_FLOW_START or e[1] <= t_cut
            ])
        }


def build_pair(ops):
    ref, cand = ScalarCalendar(), EventColumns()
    for win, node, entry in ops:
        ref.insert(win, node, entry)
        cand.insert(win, node, entry)
    return ref, cand


class TestLockstep:
    @given(ops=inserts)
    @settings(max_examples=80, deadline=None)
    def test_grouping_matches_scalar_calendar(self, ops):
        """Insertion-order grouping reproduces the nested dicts exactly:
        same windows, same node-key order, same per-node entry order."""
        ref, cand = build_pair(ops)
        assert sorted(ref.calendar) == cand.windows()
        assert len(cand) == sum(
            len(v) for b in ref.calendar.values() for v in b.values())
        for win, grouped in cand.items():
            assert list(grouped) == list(ref.calendar[win])
            assert grouped == ref.calendar[win]

    @given(ops=inserts, data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_pop_window_matches(self, ops, data):
        ref, cand = build_pair(ops)
        win = data.draw(st.integers(-1, 13))
        t_cut = data.draw(st.one_of(st.none(), st.integers(0, 10 ** 6)))
        assert ref.pop_window(win, t_cut) == cand.pop_window(win, t_cut)
        # and the bucket is really gone from both
        assert ref.pop_window(win) == cand.pop_window(win) == {}

    @given(ops=inserts, data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_scheduling_matches(self, ops, data):
        """A full drain loop: the same next_window decisions, with peek
        agreeing one step ahead and never consuming."""
        ref, cand = build_pair(ops)
        current = data.draw(st.integers(-1, 5))
        active_seq = data.draw(st.lists(st.booleans(), min_size=30,
                                        max_size=30))
        for active in active_seq:
            peek = cand.peek_next(current, active)
            ref_next = ref.next_window(current, active)
            cand_next = cand.next_window(current, active)
            assert ref_next == cand_next == peek
            if ref_next is None:
                break
            ref.pop_window(ref_next)
            cand.pop_window(ref_next)
            current = ref_next

    @given(ops=inserts, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_retain_and_take_match(self, ops, data):
        ref, cand = build_pair(ops)
        keep_below = data.draw(st.integers(0, 10))
        cand.retain_nodes(lambda n: n < keep_below)
        for win in list(ref.calendar):
            kept = {n: es for n, es in ref.calendar[win].items()
                    if n < keep_below}
            if kept:
                ref.calendar[win] = kept
            else:
                del ref.calendar[win]
        for win, grouped in cand.items():
            assert grouped == ref.calendar[win]
        assert sorted(ref.calendar) == cand.windows()

        node = data.draw(st.integers(0, 9))
        moved = cand.take_node(node)
        assert moved == [
            (win, ref.calendar[win][node])
            for win in sorted(ref.calendar) if node in ref.calendar[win]
        ]
        assert all(node not in grouped for _w, grouped in cand.items())


class TestNumpyViews:
    @given(ops=inserts)
    @settings(max_examples=40, deadline=None)
    def test_as_arrays_views_the_columns(self, ops):
        np = pytest.importorskip("numpy")
        _ref, cand = build_pair(ops)
        for win in cand.windows():
            nodes, tags, times, prios = cand.as_arrays(win)
            grouped = cand.entries_of(win)
            flat = [(n, e) for n, es in grouped.items() for e in es]
            # column order is insertion order; re-derive per entry
            assert sorted(zip(nodes.tolist(), tags.tolist())) == \
                sorted((n, e[0]) for n, e in flat)
            for arr in (nodes, tags, times, prios):
                assert arr.dtype == np.int64

    @given(ops=inserts)
    @settings(max_examples=40, deadline=None)
    def test_signature_matches_ndarray_bytes(self, ops):
        """The struct-packed column streams equal ndarray.tobytes() —
        the exact property that makes the signature backend-stable."""
        np = pytest.importorskip("numpy")
        _ref, cand = build_pair(ops)
        for win in cand.windows():
            nodes, tags, times, prios = cand.as_arrays(win)
            n = len(nodes)
            packed = struct.Struct(f"<{n}q").pack
            bucket = cand._buckets[win]
            assert packed(*bucket.nodes) == nodes.tobytes()
            assert packed(*bucket.tags) == tags.tobytes()
            assert packed(*bucket.times) == times.tobytes()
            assert packed(*bucket.prios) == prios.tobytes()

    @given(ops=inserts)
    @settings(max_examples=40, deadline=None)
    def test_signature_is_deterministic_and_sensitive(self, ops):
        a = EventColumns()
        b = EventColumns()
        for win, node, entry in ops:
            a.insert(win, node, entry)
            b.insert(win, node, entry)
        assert a.signature_bytes() == b.signature_bytes()
        b.insert(13, 0, (ENTRY_TIMER, 0))
        assert a.signature_bytes() != b.signature_bytes()


# --- stage_batch ----------------------------------------------------------

staged_cols = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 10 ** 6),
              st.integers(0, 3), rows),
    max_size=60,
)


class TestStageBatch:
    @given(cols=staged_cols)
    @settings(max_examples=80, deadline=None)
    def test_stage_batch_equals_stage_sequence(self, cols):
        """Bulk staging is exactly the equivalent sequence of scalar
        ``stage`` calls: same iface-key order, same per-iface order."""
        a = WindowContext(index=0, start=0, end=10, node_entries={})
        b = WindowContext(index=0, start=0, end=10, node_entries={})
        for iface, t, prio, row in cols:
            a.stage(iface, t, prio, row)
        b.stage_batch([c[0] for c in cols], [c[1] for c in cols],
                      [c[2] for c in cols], [c[3] for c in cols])
        assert list(a.staged) == list(b.staged)
        assert a.staged == b.staged

    @given(cols=staged_cols)
    @settings(max_examples=40, deadline=None)
    def test_stage_batch_with_repeat_prio(self, cols):
        from itertools import repeat
        a = WindowContext(index=0, start=0, end=10, node_entries={})
        b = WindowContext(index=0, start=0, end=10, node_entries={})
        for iface, t, _prio, row in cols:
            a.stage(iface, t, 2, row)
        b.stage_batch([c[0] for c in cols], [c[1] for c in cols],
                      repeat(2), [c[3] for c in cols])
        assert a.staged == b.staged

    def test_stage_batch_appends_after_existing(self):
        ctx = WindowContext(index=0, start=0, end=10, node_entries={})
        ctx.stage(3, 1, 0, ("r",))
        ctx.stage_batch([3, 5], [2, 2], [0, 0], [("s",), ("u",)])
        assert ctx.staged[3] == [(1, 0, ("r",)), (2, 0, ("s",))]
        assert ctx.staged[5] == [(2, 0, ("u",))]
