"""MetricsRegistry and Histogram: the metric half of the telemetry layer."""

import pytest

from repro.core.telemetry import (
    FCT_US_BUCKETS,
    Histogram,
    MetricsRegistry,
    QUEUE_DEPTH_BUCKETS,
    UTILIZATION_BUCKETS,
    WAIT_MS_BUCKETS,
)


class TestHistogram:
    def test_records_land_in_the_right_buckets(self):
        h = Histogram((10, 100, 1000))
        for v in (0, 5, 10):        # <=10
            h.record(v)
        h.record(50)                # <=100
        h.record(5000)              # overflow
        assert h.counts == [3, 1, 0, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(0 + 5 + 10 + 50 + 5000)

    def test_mean_and_quantile(self):
        h = Histogram((1, 2, 4, 8))
        for v in (1, 1, 2, 4, 8):
            h.record(v)
        assert h.mean() == pytest.approx(16 / 5)
        assert h.quantile(0.0) <= h.quantile(0.5) <= h.quantile(1.0)
        assert h.quantile(0.5) <= 4

    def test_empty_histogram(self):
        h = Histogram((1, 2))
        assert h.count == 0
        assert h.mean() == 0.0
        assert h.quantile(0.99) == 0.0

    def test_snapshot_merge_roundtrip(self):
        a = Histogram((10, 100))
        b = Histogram((10, 100))
        a.record(5)
        a.record(500)
        b.record(50)
        b.merge_snapshot(a.snapshot())
        assert b.count == 3
        assert b.counts == [1, 1, 1]
        assert b.sum == pytest.approx(555)

    def test_merge_rejects_mismatched_buckets(self):
        a = Histogram((10, 100))
        b = Histogram((1, 2, 3))
        with pytest.raises(ValueError):
            b.merge_snapshot(a.snapshot())

    def test_bucket_catalogs_are_sorted(self):
        for buckets in (QUEUE_DEPTH_BUCKETS, UTILIZATION_BUCKETS,
                        FCT_US_BUCKETS, WAIT_MS_BUCKETS):
            assert list(buckets) == sorted(buckets)
            assert len(set(buckets)) == len(buckets)


class TestMetricsRegistry:
    def test_counters_and_gauges(self):
        m = MetricsRegistry()
        m.count("events")
        m.count("events", 4)
        m.gauge("depth", 7.5)
        m.gauge("depth", 2.5)  # gauges overwrite
        assert m.counters["events"] == 5
        assert m.gauges["depth"] == 2.5

    def test_histogram_create_or_get(self):
        m = MetricsRegistry()
        h1 = m.histogram("fct", (1, 2, 3))
        h2 = m.histogram("fct")  # existing: no buckets needed
        assert h1 is h2
        with pytest.raises(ValueError):
            m.histogram("unknown")  # first use must supply buckets

    def test_record_convenience(self):
        m = MetricsRegistry()
        m.histogram("wait", (1.0, 10.0))
        m.record("wait", 0.5)
        m.record("wait", 100.0)
        assert m.histograms["wait"].count == 2

    def test_bool_reflects_content(self):
        m = MetricsRegistry()
        assert not m
        m.count("x")
        assert m

    def test_snapshot_merge_sums_counters_and_histograms(self):
        a = MetricsRegistry()
        a.count("drops", 3)
        a.histogram("depth", (10, 100)).record(50)
        b = MetricsRegistry()
        b.count("drops", 2)
        b.histogram("depth", (10, 100)).record(5)
        b.merge(a.snapshot())
        assert b.counters["drops"] == 5
        assert b.histograms["depth"].count == 2

    def test_merge_prefixes_gauges_only(self):
        child = MetricsRegistry()
        child.count("drops", 1)
        child.gauge("busy_s", 0.25)
        parent = MetricsRegistry()
        parent.merge(child.snapshot(), prefix="a3:")
        # counters aggregate cluster-wide, gauges stay per-agent
        assert parent.counters["drops"] == 1
        assert parent.gauges["a3:busy_s"] == 0.25
        assert "busy_s" not in parent.gauges

    def test_merge_creates_missing_histograms(self):
        child = MetricsRegistry()
        child.histogram("util", (0.5, 1.0)).record(0.7)
        parent = MetricsRegistry()
        parent.merge(child.snapshot())
        assert parent.histograms["util"].count == 1
        assert parent.histograms["util"].buckets == (0.5, 1.0)
