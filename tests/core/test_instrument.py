"""InstrumentationBus: spans, merge_child, trace plumbing edge cases."""

import pytest

from repro.core.instrument import (
    InstrumentationBus,
    SystemProfile,
    WindowProfile,
    _NOOP_SPAN,
)
from repro.metrics import TraceLevel, TraceRecorder


def _child_payload(systems=("ack", "send"), windows=(0, 1)):
    totals = {name: SystemProfile(items=10, tasks=2, elapsed_s=0.5)
              for name in systems}
    wins = []
    for index in windows:
        win = WindowProfile(index=index, start_ps=index * 1000)
        for name in systems:
            prof = win.system(name)
            prof.items, prof.tasks, prof.elapsed_s = 5, 1, 0.25
        wins.append(win)
    return {"ack.count": 3}, totals, wins


class TestSpans:
    def test_disabled_span_is_the_shared_noop(self):
        bus = InstrumentationBus()
        assert bus.span("anything") is _NOOP_SPAN
        with bus.span("anything", "cat", key=1):
            pass
        assert bus.spans == []

    def test_enabled_span_records_interval(self):
        bus = InstrumentationBus()
        bus.enable_telemetry()
        with bus.span("work", "system", window=3):
            pass
        assert len(bus.spans) == 1
        t0, t1, name, cat, attrs = bus.spans[0]
        assert t0 <= t1
        assert (name, cat, attrs) == ("work", "system", {"window": 3})

    def test_span_add_uses_caller_times(self):
        bus = InstrumentationBus()
        bus.enable_telemetry()
        bus.span_add("w", 1.0, 2.0, "window")
        assert bus.spans[0][:2] == (1.0, 2.0)

    def test_rel_converts_perf_counter_readings(self):
        import time
        bus = InstrumentationBus()
        t = time.perf_counter()
        assert bus.rel(t) == pytest.approx(bus.now(), abs=0.05)


class TestMergeChild:
    def test_tags_totals_and_windows(self):
        bus = InstrumentationBus()
        counters, totals, wins = _child_payload()
        bus.merge_child("a0", counters, totals, wins)
        assert bus.counters["ack.count"] == 3
        assert bus.totals["a0:ack"].items == 10
        assert [w.index for w in bus.windows] == [0, 1]
        assert "a0:send" in bus.windows[0].systems

    def test_empty_windows_child(self):
        """An agent that ran no windows still merges cleanly."""
        bus = InstrumentationBus()
        bus.merge_child("a1", {"x": 1}, {}, [])
        assert bus.counters["x"] == 1
        assert bus.windows == []
        assert bus.profile_rows() == []

    def test_remerged_child_accumulates(self):
        """Merging the same child twice (e.g. a re-finalized engine)
        sums rather than duplicating window rows."""
        bus = InstrumentationBus()
        for _ in range(2):
            counters, totals, wins = _child_payload(windows=(0,))
            bus.merge_child("a0", counters, totals, wins)
        assert len(bus.windows) == 1
        assert bus.windows[0].system("a0:ack").items == 10
        assert bus.totals["a0:ack"].items == 20
        assert bus.counters["ack.count"] == 6

    def test_two_children_interleave_into_sorted_windows(self):
        bus = InstrumentationBus()
        _, totals, wins = _child_payload(windows=(3,))
        bus.merge_child("a1", {}, totals, wins)
        _, totals, wins = _child_payload(windows=(1,))
        bus.merge_child("a0", {}, totals, wins)
        assert [w.index for w in bus.windows] == [1, 3]

    def test_spans_are_tagged_and_clock_shifted(self):
        parent = InstrumentationBus()
        child_spans = [(0.5, 0.7, "window", "window", {"index": 0})]
        # child epoch 2 wall-seconds after the parent's: its t=0.5 is
        # the parent's t=2.5
        parent.merge_child("a2", {}, {}, [], spans=child_spans,
                           epoch_wall=parent.epoch_wall + 2.0)
        t0, t1, name, cat, attrs = parent.spans[0]
        assert t0 == pytest.approx(2.5)
        assert t1 == pytest.approx(2.7)
        assert name == "a2:window"
        assert cat == "window"

    def test_metrics_merge_rides_along(self):
        parent = InstrumentationBus()
        from repro.core.telemetry import MetricsRegistry
        child = MetricsRegistry()
        child.count("port.drops", 2)
        child.gauge("port.max_queue_bytes", 512.0)
        parent.merge_child("a1", {}, {}, [], metrics=child.snapshot())
        assert parent.metrics.counters["port.drops"] == 2
        assert parent.metrics.gauges["a1:port.max_queue_bytes"] == 512.0

    def test_profile_rows_shape(self):
        bus = InstrumentationBus()
        _, totals, wins = _child_payload(systems=("ack",), windows=(0,))
        bus.merge_child("a0", {}, totals, wins)
        rows = bus.profile_rows()
        assert rows == [{
            "window": 0, "start_ps": 0, "system": "a0:ack",
            "items": 5, "tasks": 1, "elapsed_s": 0.25,
        }]


class TestTracePlumbing:
    def test_unsubscribed_trace_is_empty_not_an_error(self):
        bus = InstrumentationBus()
        bus.enq(1, 2, 3, 0, 4, 0)  # no subscribers: silently dropped
        assert bus.trace_entries() == []
        assert bus.canonical_trace() == []
        assert isinstance(bus.trace_digest(), str)

    def test_digest_of_empty_trace_is_stable(self):
        assert (InstrumentationBus().trace_digest()
                == InstrumentationBus().trace_digest())

    def test_replace_trace_swaps_subscriber_and_level(self):
        bus = InstrumentationBus()
        old = bus.subscribe_trace(TraceRecorder(TraceLevel.FULL))
        assert bus.trace_level == int(TraceLevel.FULL)
        new = TraceRecorder(TraceLevel.PORTS)
        bus.replace_trace(old, new)
        assert bus.trace_level == int(TraceLevel.PORTS)
        bus.drop(5, 1, 2, 0, 7)
        assert new.entries and not old.entries

    def test_replace_trace_with_unsubscribed_old_still_subscribes_new(self):
        """Replacing a recorder that was never subscribed must not
        corrupt the subscriber list (checkpoint restore on a fresh
        engine hits this)."""
        bus = InstrumentationBus()
        never = TraceRecorder(TraceLevel.FULL)
        new = bus.replace_trace(never, TraceRecorder(TraceLevel.FULL))
        bus.flow_done(1, 2, 3)
        assert len(new.entries) == 1


class TestStateExportAdopt:
    def test_roundtrip_rebases_spans(self):
        a = InstrumentationBus()
        a.enable_telemetry()
        a.count("windows", 7)
        a.span_add("window", 0.1, 0.2, "window")
        a.metrics.count("port.drops", 4)
        state = a.export_state()
        b = InstrumentationBus()
        b.epoch_wall = a.epoch_wall - 1.0  # b's epoch is 1s earlier
        b.adopt_state(state)
        assert b.telemetry
        assert b.counters["windows"] == 7
        assert b.metrics.counters["port.drops"] == 4
        t0, t1 = b.spans[0][:2]
        assert t0 == pytest.approx(1.1)
        assert t1 == pytest.approx(1.2)
