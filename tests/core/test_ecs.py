"""ECS substrate: SoA tables, chunks, command buffers, the world."""

import pytest

from repro.core.ecs import (
    CHUNK_ENTITIES, CommandBuffer, EntityKind, FieldSpec, SoATable, World,
    consolidate,
)
from repro.errors import ConfigError


def mk_table():
    return SoATable("thing", (
        FieldSpec("a", 0),
        FieldSpec("b", 1.5),
        FieldSpec("c", None, item_bytes=16),
    ))


class TestSoATable:
    def test_add_with_defaults(self):
        t = mk_table()
        i = t.add(a=7)
        assert t.get(i, "a") == 7
        assert t.get(i, "b") == 1.5
        assert t.get(i, "c") is None

    def test_columns_are_contiguous_per_field(self):
        t = mk_table()
        for i in range(10):
            t.add(a=i)
        assert t.col("a") == list(range(10))

    def test_add_many(self):
        t = mk_table()
        r = t.add_many(5)
        assert list(r) == [0, 1, 2, 3, 4]
        assert len(t) == 5
        assert t.col("b") == [1.5] * 5

    def test_row_load_store(self):
        t = mk_table()
        i = t.add(a=1, b=2.0)
        row = t.load_row(i)
        assert row == {"a": 1, "b": 2.0, "c": None}
        t.store_row(i, {"a": 9, "c": {3}})
        assert t.get(i, "a") == 9
        assert t.get(i, "c") == {3}

    def test_unknown_field_rejected(self):
        t = mk_table()
        with pytest.raises(ConfigError):
            t.add(zzz=1)

    def test_schema_validation(self):
        with pytest.raises(ConfigError):
            SoATable("empty", ())
        with pytest.raises(ConfigError):
            SoATable("dup", (FieldSpec("x", 0), FieldSpec("x", 1)))

    def test_chunk_geometry(self):
        t = mk_table()
        t.add_many(2 * CHUNK_ENTITIES + 10)
        chunks = list(t.chunks())
        assert chunks[0] == (0, CHUNK_ENTITIES)
        assert chunks[-1] == (2 * CHUNK_ENTITIES, 2 * CHUNK_ENTITIES + 10)
        assert t.chunk_count() == 3

    def test_memory_model(self):
        t = mk_table()
        t.add_many(100)
        assert t.memory_bytes() == 100 * (8 + 8 + 16)


class TestCommandBuffer:
    def test_consolidation_in_worker_order(self):
        b1, b2 = CommandBuffer(), CommandBuffer()
        b1.append(5, "w1-a")
        b2.append(5, "w2-a")
        b1.append(5, "w1-b")
        sink = {}
        n = consolidate([b1, b2], sink)
        assert n == 3
        assert sink[5] == ["w1-a", "w1-b", "w2-a"]

    def test_multiple_targets(self):
        b = CommandBuffer()
        b.append(1, "x")
        b.append(2, "y")
        sink = {}
        consolidate([b], sink)
        assert sink == {1: ["x"], 2: ["y"]}

    def test_len(self):
        b = CommandBuffer()
        assert len(b) == 0
        b.append(0, 1)
        assert len(b) == 1


class TestWorld:
    def test_tables_by_kind(self):
        w = World()
        assert w.table(EntityKind.SENDER) is w.senders
        assert w.table(EntityKind.EGRESS_PORT) is w.egress

    def test_memory_accounts_all_tables(self):
        w = World()
        w.senders.add(flow_id=0)
        w.receivers.add(flow_id=0, out_of_order=set())
        assert w.memory_bytes() == (w.senders.memory_bytes()
                                    + w.receivers.memory_bytes())
