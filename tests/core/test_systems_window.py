"""Direct window-level tests of the four systems.

The integration suite proves whole-run equivalence; these tests pin the
per-window behaviour of each system in isolation so failures localize.
"""

import pytest

from repro.core.engine import DodEngine
from repro.core.window import (
    ENTRY_ARRIVAL, ENTRY_FLOW_START, WindowContext,
)
from repro.core.systems import (
    run_ack_system, run_forward_system, run_send_system, run_transmit_system,
)
from repro.protocols.packet import (
    F_FLOW, F_ISACK, F_SEQ, PRIO_ARRIVAL, ack_row, data_row,
)
from repro.scenario import make_scenario
from repro.topology import dumbbell
from repro.traffic import Flow
from repro.units import GBPS, us


@pytest.fixture
def engine(small_dumbbell):
    flows = [Flow(0, 0, 4, 30_000, 0), Flow(1, 1, 5, 30_000, 0)]
    sc = make_scenario(small_dumbbell, flows)
    eng = DodEngine(sc)
    eng.build()
    return eng


def mk_ctx(engine, index=0, entries=None):
    L = engine.lookahead
    return WindowContext(index=index, start=index * L, end=(index + 1) * L,
                         node_entries=entries or {})


class TestSendSystem:
    def test_flow_start_emits_initial_window(self, engine):
        ctx = mk_ctx(engine, 0, {0: [(ENTRY_FLOW_START, 0, 0)]})
        run_send_system(engine, ctx)
        nic = engine.scenario.topology.host_iface(0).iface_id
        staged = ctx.staged[nic]
        # 30 KB = 21 segments, init cwnd 10 -> 10 staged
        assert len(staged) == 10
        assert [row[F_SEQ] for _t, _p, row in staged] == list(range(10))
        assert ctx.counts.send == 10
        # RTO wakeup registered for the armed timer
        assert engine.events, "no retransmission wakeup registered"

    def test_ack_advances_window(self, engine):
        # start the flow first
        ctx0 = mk_ctx(engine, 0, {0: [(ENTRY_FLOW_START, 0, 0)]})
        run_send_system(engine, ctx0)
        # deliver a cumulative ack for segment 0 at the sender host
        t = engine.lookahead * 3 + 5
        ack = ack_row(0, 1, 0, 0, 4, 0)
        ctx1 = mk_ctx(engine, 3, {0: [(ENTRY_ARRIVAL, t, PRIO_ARRIVAL, ack)]})
        run_send_system(engine, ctx1)
        nic = engine.scenario.topology.host_iface(0).iface_id
        seqs = [row[F_SEQ] for _t, _p, row in ctx1.staged[nic]]
        # slow start: one ack -> cwnd 11 -> segments 10 and 11 released
        assert seqs == [10, 11]
        assert len(engine.results.rtt_samples) == 1

    def test_flows_processed_in_flow_id_order(self, engine):
        ctx = mk_ctx(engine, 0, {
            0: [(ENTRY_FLOW_START, 0, 0)],
            1: [(ENTRY_FLOW_START, 0, 1)],
        })
        run_send_system(engine, ctx)
        assert ctx.counts.send == 20  # both initial windows


class TestAckSystem:
    def test_data_delivery_generates_ack(self, engine):
        t = 7
        data = data_row(0, 0, 1400, 2, 0, 4)
        ctx = mk_ctx(engine, 0, {4: [(ENTRY_ARRIVAL, t, PRIO_ARRIVAL, data)]})
        run_ack_system(engine, ctx)
        nic = engine.scenario.topology.host_iface(4).iface_id
        acks = ctx.staged[nic]
        assert len(acks) == 1
        at, _p, arow = acks[0]
        assert at == t
        assert arow[F_ISACK] == 1 and arow[F_SEQ] == 1  # cumulative
        assert ctx.counts.ack == 1

    def test_completion_recorded(self, engine):
        # flow 0 has 21 segments; deliver them all in one window
        entries = [
            (ENTRY_ARRIVAL, 10 + s, PRIO_ARRIVAL,
             data_row(0, s, 1400, 0, 0, 4))
            for s in range(21)
        ]
        ctx = mk_ctx(engine, 0, {4: entries})
        run_ack_system(engine, ctx)
        assert engine.results.flows[0].complete_ps == 10 + 20


class TestForwardSystem:
    def test_switch_arrival_staged_at_resolved_egress(self, engine):
        topo = engine.scenario.topology
        sw = topo.switches[0]  # swL, node 8
        data = data_row(0, 3, 1400, 0, 0, 4)  # toward host 4 (right side)
        ctx = mk_ctx(engine, 0, {sw: [(ENTRY_ARRIVAL, 5, PRIO_ARRIVAL, data)]})
        run_forward_system(engine, ctx)
        port = engine.scenario.fib.resolve_port(sw, 4, 0)
        expected_iface = topo.iface_id(sw, port)
        assert list(ctx.staged) == [expected_iface]
        assert ctx.counts.forward == 1

    def test_host_entries_ignored(self, engine):
        data = data_row(0, 3, 1400, 0, 0, 4)
        ctx = mk_ctx(engine, 0, {4: [(ENTRY_ARRIVAL, 5, PRIO_ARRIVAL, data)]})
        run_forward_system(engine, ctx)
        assert not ctx.staged
        assert ctx.counts.forward == 0


class TestTransmitSystem:
    def test_emission_delivered_next_window(self, engine):
        topo = engine.scenario.topology
        nic = topo.host_iface(0)
        data = data_row(0, 0, 1400, 0, 0, 4)
        ctx = mk_ctx(engine, 0)
        ctx.stage(nic.iface_id, 3, PRIO_ARRIVAL, data)
        run_transmit_system(engine, ctx)
        assert ctx.counts.transmit == 1
        # the delivery (an ENTRY_ARRIVAL) landed strictly after window 0
        # (build-time flow starts legitimately sit in window 0)
        from repro.core.window import ENTRY_ARRIVAL as ARR
        arrival_windows = [
            win for win, buckets in engine.events.items()
            for entries in buckets.values()
            for e in entries if e[0] == ARR
        ]
        assert arrival_windows and min(arrival_windows) >= 1

    def test_backlogged_port_stays_active(self, engine):
        topo = engine.scenario.topology
        nic = topo.host_iface(0)
        ctx = mk_ctx(engine, 0)
        # enough back-to-back packets to outlast one 1 us window at 10G
        for s in range(20):
            ctx.stage(nic.iface_id, 0, PRIO_ARRIVAL,
                      data_row(0, s, 1400, 0, 0, 4))
        run_transmit_system(engine, ctx)
        assert nic.iface_id in engine.active_ports
        # continuing the next window drains more
        ctx2 = mk_ctx(engine, 1)
        run_transmit_system(engine, ctx2)
        assert ctx2.counts.transmit > 0
