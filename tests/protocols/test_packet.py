"""Packet rows, segmentation, the ordering-contract helpers."""

import pytest

from repro.protocols.packet import (
    F_CE, F_SEQ, F_SIZE, HEADER_BYTES, MSS, Packet, ack_row, data_row,
    order_key, packet_uid, segment_count, segment_payload, with_ce,
)
from repro.units import ACK_BYTES


def test_data_row_wire_size_includes_headers():
    row = data_row(5, 3, 1000, 42, 0, 9)
    assert row[F_SIZE] == 1000 + HEADER_BYTES
    assert row[F_SEQ] == 3


def test_ack_row_fixed_size():
    row = ack_row(5, 7, 1, 42, 9, 0)
    assert row[F_SIZE] == ACK_BYTES


def test_with_ce_only_touches_ce():
    row = data_row(5, 3, 1000, 42, 0, 9)
    marked = with_ce(row)
    assert marked[F_CE] == 1
    assert marked[:F_CE] == row[:F_CE]
    assert marked[F_CE + 1:] == row[F_CE + 1:]


def test_packet_object_round_trip():
    row = data_row(5, 3, 1000, 42, 0, 9)
    assert Packet.from_row(row).row() == row


def test_order_key_components():
    a = data_row(1, 5, 100, 0, 0, 9)
    b = ack_row(1, 5, 0, 0, 9, 0)
    assert order_key(a) < order_key(b)  # data before ack at same seq
    c = data_row(0, 99, 100, 0, 0, 9)
    assert order_key(c) < order_key(a)  # flow id dominates


def test_packet_uid_unique_across_kinds():
    d = data_row(7, 3, 100, 0, 0, 9)
    a = ack_row(7, 3, 0, 0, 9, 0)
    assert packet_uid(d) != packet_uid(a)
    assert packet_uid(d) == packet_uid(d)


@pytest.mark.parametrize("size,expected", [
    (1, 1), (MSS, 1), (MSS + 1, 2), (10 * MSS, 10), (10 * MSS + 5, 11),
])
def test_segment_count(size, expected):
    assert segment_count(size) == expected


def test_segment_payloads_sum_to_size():
    for size in (1, MSS - 1, MSS, MSS + 1, 5 * MSS + 123):
        total = segment_count(size)
        payloads = [segment_payload(size, s) for s in range(total)]
        assert sum(payloads) == size
        assert all(0 < p <= MSS for p in payloads)
        assert all(p == MSS for p in payloads[:-1])
