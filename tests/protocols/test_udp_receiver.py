"""UDP pacing schedule and receiver reassembly."""

import pytest

from repro.protocols import ReceiverState, UdpSchedule
from repro.protocols.packet import HEADER_BYTES, MSS
from repro.units import GBPS, serialization_time_ps, us


class TestUdpSchedule:
    def test_enqueue_times_paced_at_line_rate(self):
        sched = UdpSchedule(0, 10 * MSS, start_ps=1000,
                            nic_rate_bps=10 * GBPS)
        per_seg = serialization_time_ps(MSS + HEADER_BYTES, 10 * GBPS)
        for seq in range(10):
            assert sched.enqueue_time(seq) == 1000 + seq * per_seg

    def test_segments_in_window_cover_schedule(self):
        sched = UdpSchedule(0, 50 * MSS, start_ps=0,
                            nic_rate_bps=10 * GBPS)
        window = us(1)
        collected = []
        w = 0
        while len(collected) < sched.total_segs:
            collected.extend(
                sched.segments_in(w * window, (w + 1) * window))
            w += 1
            assert w < 10_000
        assert [s for s, _t in collected] == list(range(50))
        # times match the closed form
        for seq, t in collected:
            assert t == sched.enqueue_time(seq)

    def test_window_slicing_no_duplicates_or_gaps(self):
        sched = UdpSchedule(0, 23 * MSS + 17, start_ps=123_456,
                            nic_rate_bps=40 * GBPS)
        window = us(3)
        seen = []
        for w in range(0, 300):
            seen.extend(s for s, _ in sched.segments_in(w * window,
                                                        (w + 1) * window))
        assert seen == list(range(sched.total_segs))

    def test_last_segment_payload(self):
        sched = UdpSchedule(0, 2 * MSS + 100, 0, 10 * GBPS)
        assert sched.payload(0) == MSS
        assert sched.payload(2) == 100


class TestReceiver:
    def test_in_order_delivery(self):
        r = ReceiverState(0, total_segs=3, needs_ack=True)
        assert r.on_data(0, 0, 11, 100) == (1, 0, 11)
        assert r.on_data(1, 1, 12, 200) == (2, 1, 12)
        assert not r.complete
        assert r.on_data(2, 0, 13, 300) == (3, 0, 13)
        assert r.complete and r.complete_ps == 300

    def test_out_of_order_reassembly(self):
        r = ReceiverState(0, total_segs=4, needs_ack=True)
        assert r.on_data(2, 0, 0, 10) == (0, 0, 0)   # dup-ack style
        assert r.on_data(0, 0, 0, 20) == (1, 0, 0)
        assert r.on_data(1, 0, 0, 30) == (3, 0, 0)   # jumps past 2
        assert r.on_data(3, 0, 0, 40) == (4, 0, 0)
        assert r.complete_ps == 40

    def test_duplicates_do_not_double_count(self):
        r = ReceiverState(0, total_segs=2, needs_ack=True)
        r.on_data(0, 0, 0, 10)
        r.on_data(0, 0, 0, 20)  # duplicate
        assert r.unique_received == 1
        assert not r.complete
        r.on_data(1, 0, 0, 30)
        assert r.complete

    def test_duplicate_still_acks(self):
        r = ReceiverState(0, total_segs=5, needs_ack=True)
        r.on_data(0, 0, 0, 10)
        ack = r.on_data(0, 0, 0, 20)
        assert ack == (1, 0, 0)  # duplicate cumulative ack drives rtx

    def test_udp_receiver_never_acks(self):
        r = ReceiverState(0, total_segs=2, needs_ack=False)
        assert r.on_data(0, 0, 0, 10) is None
        assert r.on_data(1, 0, 0, 20) is None
        assert r.complete_ps == 20

    def test_completion_time_is_first_full_coverage(self):
        r = ReceiverState(0, total_segs=2, needs_ack=True)
        r.on_data(0, 0, 0, 10)
        r.on_data(1, 0, 0, 20)
        r.on_data(1, 0, 0, 99)  # late duplicate must not move it
        assert r.complete_ps == 20
