"""AQM: ECN-threshold and RED marking semantics."""

import pytest

from repro.errors import ConfigError
from repro.protocols.aqm import (
    AqmConfig, AqmKind, ewma_update, red_mark_probability, should_mark,
)
from repro.protocols.packet import ack_row, data_row

DATA = data_row(1, 0, 1000, 0, 0, 2)
ACK = ack_row(1, 1, 0, 0, 2, 1)


def test_ecn_threshold_marks_above_k():
    cfg = AqmConfig(kind=AqmKind.ECN_THRESHOLD, ecn_threshold_bytes=10_000)
    assert not should_mark(cfg, DATA, 9_999, 0, 0)
    assert should_mark(cfg, DATA, 10_000, 0, 0)
    assert should_mark(cfg, DATA, 50_000, 0, 0)


def test_acks_never_marked():
    cfg = AqmConfig(kind=AqmKind.ECN_THRESHOLD, ecn_threshold_bytes=1)
    assert not should_mark(cfg, ACK, 10**9, 0, 0)


def test_none_kind_never_marks():
    cfg = AqmConfig(kind=AqmKind.NONE)
    assert not should_mark(cfg, DATA, 10**9, 10**9, 0)


class TestRed:
    CFG = AqmConfig(kind=AqmKind.RED, red_min_bytes=1000,
                    red_max_bytes=5000, red_max_p=0.5)

    def test_probability_ramp(self):
        assert red_mark_probability(999, self.CFG) == 0.0
        assert red_mark_probability(3000, self.CFG) == pytest.approx(0.25)
        assert red_mark_probability(5001, self.CFG) == 1.0

    def test_marking_deterministic(self):
        r1 = should_mark(self.CFG, DATA, 0, 3000, iface_id=7)
        r2 = should_mark(self.CFG, DATA, 0, 3000, iface_id=7)
        assert r1 == r2

    def test_marking_rate_tracks_probability(self):
        marked = sum(
            should_mark(self.CFG, data_row(1, seq, 1000, 0, 0, 2),
                        0, 3000, 7)
            for seq in range(4000)
        )
        assert 0.18 < marked / 4000 < 0.32  # p = 0.25

    def test_extremes(self):
        assert should_mark(self.CFG, DATA, 0, 10**9, 7)
        assert not should_mark(self.CFG, DATA, 0, 0, 7)

    def test_invalid_thresholds(self):
        with pytest.raises(ConfigError):
            AqmConfig(kind=AqmKind.RED, red_min_bytes=10, red_max_bytes=10)


def test_ewma_integer_and_converging():
    avg = 0
    for _ in range(5000):
        avg = ewma_update(avg, 10_000, shift=4)
    assert isinstance(avg, int)
    assert 9_980 <= avg <= 10_000
    # decays toward zero too
    for _ in range(5000):
        avg = ewma_update(avg, 0, shift=4)
    assert 0 <= avg <= 30
