"""The egress-port automaton: the component trace equality rests on.

The key test is the incremental-vs-windowed equivalence: driving one
port event by event (the OOD style) and replaying the same arrivals
window by window (the DOD style) must transmit identical packets at
identical times.
"""

import pytest

from repro.errors import SimulationError
from repro.protocols import AqmConfig, AqmKind, EgressConfig, EgressPort
from repro.protocols.packet import (
    F_CE, F_FLOW, F_ISACK, F_SEQ, PRIO_ARRIVAL, data_row,
)
from repro.schedulers import SchedulerKind
from repro.topology import dumbbell
from repro.units import GBPS, serialization_time_ps, us


@pytest.fixture
def iface():
    topo = dumbbell(1, bottleneck_rate_bps=10 * GBPS)
    # bottleneck egress from swL toward swR
    return topo.iface(2, 1)


def mk_port(iface, buffer_bytes=10**9, kind=AqmKind.NONE, k=10**9,
            sched=SchedulerKind.FIFO):
    cfg = EgressConfig(buffer_bytes=buffer_bytes,
                       aqm=AqmConfig(kind=kind, ecn_threshold_bytes=k),
                       scheduler=sched)
    return EgressPort(iface, cfg)


def row(flow, seq, payload=1000):
    return data_row(flow, seq, payload, 0, 0, 1)


class TestEventDriven:
    def test_single_packet_service(self, iface):
        port = mk_port(iface)
        r = row(0, 0)
        assert port.arrive(r, 100) is not None
        pkt, end = port.start_service(100)
        assert pkt == r
        assert end == 100 + serialization_time_ps(r[3], iface.rate_bps)
        port.complete_service()
        assert port.start_service(end) is None  # queue empty

    def test_back_to_back_service(self, iface):
        port = mk_port(iface)
        port.arrive(row(0, 0), 100)
        port.arrive(row(0, 1), 100)
        _, end1 = port.start_service(100)
        port.complete_service()
        _, end2 = port.start_service(end1)
        assert end2 == end1 + (end1 - 100)

    def test_double_start_raises(self, iface):
        port = mk_port(iface)
        port.arrive(row(0, 0), 0)
        port.start_service(0)
        with pytest.raises(SimulationError):
            port.start_service(0)

    def test_service_before_line_free_raises(self, iface):
        port = mk_port(iface)
        port.arrive(row(0, 0), 0)
        _, end = port.start_service(0)
        port.complete_service()
        port.arrive(row(0, 1), 1)
        with pytest.raises(SimulationError):
            port.start_service(end - 1)

    def test_tail_drop(self, iface):
        port = mk_port(iface, buffer_bytes=2500)
        assert port.arrive(row(0, 0), 0) is not None  # 1060 B
        assert port.arrive(row(0, 1), 0) is not None  # 2120 B
        assert port.arrive(row(0, 2), 0) is None      # would exceed
        assert port.stats.dropped == 1

    def test_ecn_marking_at_threshold(self, iface):
        port = mk_port(iface, kind=AqmKind.ECN_THRESHOLD, k=2000)
        a = port.arrive(row(0, 0), 0)
        assert a[F_CE] == 0  # queue empty before arrival
        b = port.arrive(row(0, 1), 0)
        assert b[F_CE] == 0  # 1060 < 2000
        c = port.arrive(row(0, 2), 0)
        assert c[F_CE] == 1  # 2120 >= 2000
        assert port.stats.marked == 1


class TestWindowedEqualsEventDriven:
    def _drive_event_style(self, iface, arrivals, **port_kw):
        """Reference: a miniature event loop over one port."""
        port = mk_port(iface, **port_kw)
        emissions = []
        pending = sorted(arrivals, key=lambda a: (a[0], a[1],
                                                  a[2][F_FLOW],
                                                  a[2][F_ISACK],
                                                  a[2][F_SEQ]))
        # event loop: (time, kind 0=done 1=arrival)
        import heapq
        heap = []
        for i, (t, prio, r) in enumerate(pending):
            heapq.heappush(heap, (t, 1, i))
        busy_end = None
        while heap:
            t, kind, i = heapq.heappop(heap)
            if kind == 0:
                port.complete_service()
                res = port.start_service(t)
                if res:
                    r2, end = res
                    emissions.append((r2, end - port.serialization_ps(r2), end))
                    heapq.heappush(heap, (end, 0, -1))
            else:
                accepted = port.arrive(pending[i][2], t)
                if accepted is not None and not port.in_service:
                    res = port.start_service(t)
                    if res:
                        r2, end = res
                        emissions.append((r2, end - port.serialization_ps(r2), end))
                        heapq.heappush(heap, (end, 0, -1))
        return emissions

    def _drive_windowed(self, iface, arrivals, window_ps, **port_kw):
        port = mk_port(iface, **port_kw)
        emissions = []
        horizon = max(a[0] for a in arrivals) + 10 * window_ps
        win = 0
        while True:
            start = win * window_ps
            batch = sorted(
                (a for a in arrivals if start <= a[0] < start + window_ps),
                key=lambda a: (a[0], a[1], a[2][F_FLOW], a[2][F_ISACK],
                               a[2][F_SEQ]),
            )
            port.replay_window(batch, start, start + window_ps, emissions)
            win += 1
            if start > horizon and len(port.sched) == 0:
                break
        return emissions

    @pytest.mark.parametrize("window_us", [1, 3, 17])
    def test_equivalence_bursty_arrivals(self, iface, window_us):
        arrivals = []
        t = 0
        for seq in range(60):
            t += (seq * 37) % 900 * 1000  # bursty, deterministic
            arrivals.append((t, PRIO_ARRIVAL, row(seq % 5, seq)))
        ev = self._drive_event_style(iface, arrivals, buffer_bytes=8000)
        wi = self._drive_windowed(iface, arrivals, us(window_us),
                                  buffer_bytes=8000)
        assert ev == wi

    def test_equivalence_with_marking(self, iface):
        arrivals = [(i * 200_000, PRIO_ARRIVAL, row(i % 3, i))
                    for i in range(80)]
        ev = self._drive_event_style(iface, arrivals,
                                     kind=AqmKind.ECN_THRESHOLD, k=3000)
        wi = self._drive_windowed(iface, arrivals, us(1),
                                  kind=AqmKind.ECN_THRESHOLD, k=3000)
        assert ev == wi
        assert any(r[F_CE] for r, _s, _e in ev), "no marks exercised"

    def test_simultaneous_arrival_and_completion_tie(self, iface):
        ser = serialization_time_ps(1060, iface.rate_bps)
        # second arrival exactly when the first finishes serializing
        arrivals = [(0, PRIO_ARRIVAL, row(0, 0)),
                    (ser, PRIO_ARRIVAL, row(0, 1)),
                    (ser, PRIO_ARRIVAL, row(1, 0))]
        ev = self._drive_event_style(iface, arrivals)
        wi = self._drive_windowed(iface, arrivals, us(1))
        assert ev == wi
