"""DCTCP sender state machine: windows, alpha, cuts, retransmission."""

import pytest

from repro.protocols.dctcp import DctcpParams, DctcpState
from repro.units import ms, us


def mk(total=100, **params):
    return DctcpState(flow_id=0, total_segs=total,
                      params=DctcpParams(**params))


class TestStartAndWindow:
    def test_initial_window(self):
        s = mk(total=100)
        segs = s.on_start(0)
        assert segs == list(range(10))  # init_cwnd = 10
        assert s.rtx_deadline is not None

    def test_small_flow_start(self):
        s = mk(total=3)
        assert s.on_start(0) == [0, 1, 2]

    def test_slow_start_doubles_per_rtt(self):
        s = mk(total=10_000)
        s.on_start(0)
        sent = 10
        t = us(10)
        for ack in range(1, 11):
            sent += len(s.on_ack(ack, 0, 0, t))
        # 10 acks in slow start -> cwnd 20 -> 20 segments in flight
        assert s.cwnd == pytest.approx(20.0)
        assert sent == 30

    def test_congestion_avoidance_after_ssthresh(self):
        s = mk(total=10_000)
        s.on_start(0)
        s.ssthresh = 10.0  # at threshold: additive increase
        before = s.cwnd
        s.on_ack(1, 0, 0, us(10))
        assert s.cwnd == pytest.approx(before + 1.0 / before)


class TestEcnResponse:
    def test_alpha_updates_once_per_window(self):
        s = mk(total=10_000)
        s.on_start(0)
        s.alpha = 0.5
        s.on_ack(1, 1, 0, us(10))  # marked ack closes the first window
        # alpha moves toward the window's 100% mark fraction by gain g.
        assert s.alpha == pytest.approx(0.5 * (1 - s.params.g) + s.params.g)

    def test_alpha_converges_to_mark_fraction(self):
        s = mk(total=10**6)
        s.on_start(0)
        ack = 1
        t = us(10)
        for _ in range(3000):
            s.on_ack(ack, 1, t - us(5), t)  # everything marked
            ack += 1
            t += us(1)
        assert s.alpha > 0.95

    def test_cut_once_per_window(self):
        s = mk(total=10_000)
        s.on_start(0)
        s.alpha = 1.0
        cwnd0 = s.cwnd
        s.on_ack(1, 1, 0, us(10))
        cut1 = s.cwnd
        assert cut1 == pytest.approx(max(1.0, cwnd0 / 2), rel=0.2)
        # second marked ack in the same window: no further cut
        s.on_ack(2, 1, 0, us(11))
        assert s.cwnd >= cut1

    def test_unmarked_acks_grow_window(self):
        s = mk(total=10_000)
        s.on_start(0)
        before = s.cwnd
        s.on_ack(1, 0, 0, us(10))
        assert s.cwnd > before


class TestLossRecovery:
    def test_three_dupacks_fast_retransmit(self):
        s = mk(total=1000)
        s.on_start(0)
        s.on_ack(1, 0, 0, us(10))
        rtx = []
        for _ in range(3):
            rtx = s.on_ack(1, 0, 0, us(11))
        assert rtx == [1], "fast retransmit of the lost segment"
        assert s.dupacks == 3

    def test_dupacks_do_not_advance_una(self):
        s = mk(total=1000)
        s.on_start(0)
        s.on_ack(1, 0, 0, us(10))
        s.on_ack(1, 0, 0, us(11))
        assert s.snd_una == 1

    def test_timeout_collapses_window(self):
        s = mk(total=1000)
        s.on_start(0)
        deadline = s.rtx_deadline
        rtx = s.on_timeout(deadline)
        assert rtx == [0]
        assert s.cwnd == 1.0
        assert s.backoff == 2
        assert s.rtx_deadline > deadline

    def test_backoff_is_exponential_and_capped(self):
        s = mk(total=1000)
        s.on_start(0)
        for _ in range(10):
            s.on_timeout(s.rtx_deadline)
        assert s.backoff == 64


class TestCompletion:
    def test_done_on_final_ack(self):
        s = mk(total=5)
        s.on_start(0)
        for ack in range(1, 5):
            s.on_ack(ack, 0, 0, us(ack))
        assert not s.done
        s.on_ack(5, 0, 0, us(5))
        assert s.done
        assert s.done_ps == us(5)
        assert s.rtx_deadline is None

    def test_acks_after_done_ignored(self):
        s = mk(total=2)
        s.on_start(0)
        s.on_ack(2, 0, 0, us(1))
        assert s.on_ack(2, 0, 0, us(2)) == []

    def test_timeout_after_done_noop(self):
        s = mk(total=2)
        s.on_start(0)
        s.on_ack(2, 0, 0, us(1))
        assert s.on_timeout(us(99)) == []


class TestRtt:
    def test_rto_tracks_rtt(self):
        s = mk(total=10_000, min_rto_ps=us(100))
        s.on_start(0)
        for ack in range(1, 50):
            now = us(10 * ack)
            s.on_ack(ack, 0, now - us(8), now)  # 8 us RTT samples
        assert s.srtt_ps == pytest.approx(us(8), rel=0.05)
        assert s.rto_ps >= us(100)  # clamped at min

    def test_rto_clamped_at_max(self):
        s = mk(total=100, max_rto_ps=ms(1))
        s.on_start(0)
        s.on_ack(1, 0, -ms(500), us(1))  # absurd sample
        assert s.rto_ps == ms(1)
