"""Bench harness: table formatting and scenario/scaling helpers."""

import os

import pytest

from repro.bench import (
    EventRatios, dcn_scenario, emit, format_table, full_mesh_packets,
    isp_scenario, measure_cmr, wan_scenario, windows_at_paper_scale,
)
from repro.metrics import SimResults
from repro.metrics.results import EventCounts


class TestTables:
    def test_format_alignment(self):
        out = format_table("T", ["a", "bbb"], [(1, 2), (333, 4)])
        lines = out.splitlines()
        assert lines[0] == "== T =="
        widths = {len(l) for l in lines[1:]}
        assert len(widths) == 1, "columns misaligned"

    def test_note_appended(self):
        out = format_table("T", ["x"], [(1,)], note="hello")
        assert out.endswith("note: hello")

    def test_empty_rows(self):
        out = format_table("T", ["col"], [])
        assert "col" in out

    def test_emit_writes_file(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path))
        path = emit("unit_test_table", "CONTENT")
        assert os.path.dirname(path) == str(tmp_path)
        with open(path) as fh:
            assert "CONTENT" in fh.read()
        assert "CONTENT" in capsys.readouterr().out


class TestScenarios:
    def test_dcn_scenario_shape(self):
        sc = dcn_scenario(4, duration_ms=0.2, max_flows=20)
        assert sc.topology.num_hosts == 16
        assert 0 < len(sc.flows) <= 20

    def test_wan_scenarios(self):
        assert wan_scenario("abilene", max_flows=10).topology.name == "Abilene"
        assert wan_scenario("geant", max_flows=10).topology.name == "GEANT"

    def test_isp_scenario_scales(self):
        bench_topo, _ = isp_scenario("bench", max_flows=10)
        assert 500 < bench_topo.num_nodes < 5000

    def test_full_mesh_packets_arithmetic(self):
        # 1024 hosts x 100G x 0.3 for 1 s / 12000-bit frames
        packets = full_mesh_packets(1024)
        assert 2.4e9 < packets < 2.7e9

    def test_windows_at_paper_scale(self):
        assert windows_at_paper_scale() == 1_000_000
        assert windows_at_paper_scale(0.5) == 500_000

    def test_event_ratios(self):
        res = SimResults("e", "s", 0)
        res.events = EventCounts(send=100, forward=400, transmit=500,
                                 ack=200)
        res.tx_bytes = 150_000
        r = EventRatios.measure(res)
        assert r.events_per_packet == pytest.approx(12.0)
        assert r.bytes_per_packet == pytest.approx(1500.0)
