"""Scenario construction and validation."""

import pytest

from repro.errors import ConfigError
from repro.protocols import AqmConfig, AqmKind
from repro.scenario import HOST_BUFFER_BYTES, make_scenario
from repro.schedulers import SchedulerKind
from repro.topology import Topology, dumbbell
from repro.traffic import Flow
from repro.units import GBPS, us


def test_defaults(small_dumbbell):
    sc = make_scenario(small_dumbbell, [Flow(0, 0, 4, 1000, 0)])
    assert sc.switch_egress.aqm.kind == AqmKind.ECN_THRESHOLD
    assert sc.host_egress.buffer_bytes == HOST_BUFFER_BYTES
    assert sc.host_egress.aqm.kind == AqmKind.NONE
    assert sc.lookahead_ps == small_dumbbell.min_link_delay_ps()
    assert sc.fib.entry_count() > 0


def test_flows_validated_against_hosts(small_dumbbell):
    with pytest.raises(ConfigError):
        make_scenario(small_dumbbell, [Flow(0, 0, 8, 1000, 0)])  # 8 = switch


def test_empty_flows_rejected(small_dumbbell):
    with pytest.raises(ConfigError):
        make_scenario(small_dumbbell, [])


def test_unfrozen_topology_rejected():
    topo = Topology("raw")
    h0, h1 = topo.add_host(), topo.add_host()
    s = topo.add_switch()
    topo.add_link(h0, s)
    topo.add_link(h1, s)
    from repro.scenario import Scenario
    with pytest.raises(ConfigError):
        make_scenario(topo, [Flow(0, h0, h1, 1, 0)])


def test_scheduler_and_classes_plumbed(small_dumbbell):
    sc = make_scenario(
        small_dumbbell,
        [Flow(0, 0, 4, 1000, 0, priority=2), Flow(1, 1, 5, 1000, 0)],
        scheduler=SchedulerKind.SP, num_classes=3,
    )
    assert sc.switch_egress.scheduler == SchedulerKind.SP
    assert sc.switch_egress.num_classes == 3
    assert sc.classifier_table() == [2, 0]
    assert sc.flow_priority(0) == 2


def test_shared_fib_reused(small_dumbbell):
    from repro.routing import build_fib
    fib = build_fib(small_dumbbell)
    sc = make_scenario(small_dumbbell, [Flow(0, 0, 4, 1000, 0)], fib=fib)
    assert sc.fib is fib


def test_custom_aqm(small_dumbbell):
    aqm = AqmConfig(kind=AqmKind.RED)
    sc = make_scenario(small_dumbbell, [Flow(0, 0, 4, 1000, 0)], aqm=aqm)
    assert sc.switch_egress.aqm.kind == AqmKind.RED
