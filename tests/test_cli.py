"""CLI: spec parsing and command round trips."""

import pytest

from repro.cli import build_flows, build_topology, main, make_parser
from repro.errors import ConfigError
from repro.traffic import Transport


class TestSpecs:
    def test_topology_specs(self):
        assert build_topology("fattree:4").num_hosts == 16
        assert build_topology("dumbbell:3").num_hosts == 6
        assert build_topology("abilene").name == "Abilene"
        assert build_topology("geant").name == "GEANT"
        assert build_topology("isp:5").num_nodes > 100

    def test_unknown_topology(self):
        with pytest.raises(ConfigError):
            build_topology("torus:3")

    def test_mesh_flows(self):
        topo = build_topology("dumbbell:4")
        flows = build_flows("mesh:load=0.5,max=20,seed=3", topo)
        assert 0 < len(flows) <= 20

    def test_fixed_flows_with_transport(self):
        topo = build_topology("dumbbell:4")
        flows = build_flows("fixed:n=5,size=9999,transport=reno", topo)
        assert len(flows) == 5
        assert all(f.transport == Transport.RENO for f in flows)
        assert all(f.size_bytes == 9999 for f in flows)

    def test_bad_flow_spec(self):
        topo = build_topology("dumbbell:2")
        with pytest.raises(ConfigError):
            build_flows("storm:x", topo)
        with pytest.raises(ConfigError):
            build_flows("mesh:oops", topo)


class TestCommands:
    def test_run_dons(self, capsys):
        rc = main(["run", "--topology", "dumbbell:2",
                   "--flows", "fixed:n=2,size=30000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "flows completed : 2/2" in out

    def test_run_ood(self, capsys):
        rc = main(["run", "--engine", "ood", "--topology", "dumbbell:2",
                   "--flows", "fixed:n=2,size=30000"])
        assert rc == 0

    def test_run_numpy_backend(self, capsys):
        pytest.importorskip("numpy")
        rc = main(["run", "--topology", "dumbbell:2",
                   "--flows", "fixed:n=2,size=30000",
                   "--backend", "numpy"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "flows completed : 2/2" in out

    def test_compare_numpy_backend_identical(self, capsys):
        pytest.importorskip("numpy")
        rc = main(["compare", "--topology", "dumbbell:2",
                   "--flows", "fixed:n=2,size=30000",
                   "--backend", "numpy"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "identical       : True" in out

    def test_bad_backend_is_a_parse_error(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(
                ["run", "--backend", "fortran"])

    def test_compare_identical(self, capsys):
        rc = main(["compare", "--topology", "fattree:4",
                   "--flows", "fixed:n=4,size=20000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "identical       : True" in out

    def test_plan(self, capsys):
        rc = main(["plan", "--topology", "fattree:4",
                   "--flows", "mesh:max=40,load=0.5", "--machines", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "machine 0" in out

    def test_viz(self, tmp_path, capsys):
        rc = main(["viz", "--topology", "dumbbell:2",
                   "--flows", "fixed:n=2,size=30000",
                   "--out-dir", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "flows.svg").exists()
        assert (tmp_path / "links.svg").exists()

    def test_error_exit_code(self, capsys):
        rc = main(["run", "--topology", "nope"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestTelemetryCommands:
    ARGS = ["--topology", "dumbbell:2", "--flows", "fixed:n=2,size=30000"]

    def test_profile_timeline_export(self, tmp_path, capsys):
        from repro.metrics.timeline import validate_timeline_file
        out = tmp_path / "timeline.json"
        rc = main(["profile", *self.ARGS, "--timeline", str(out)])
        assert rc == 0
        events = validate_timeline_file(str(out))
        assert any(e.get("name") == "run" for e in events)
        assert (tmp_path / "timeline.json.manifest.json").exists()

    def test_profile_cluster_timeline_export(self, tmp_path, capsys):
        from repro.metrics.timeline import validate_timeline_file
        out = tmp_path / "cluster.json"
        rc = main(["profile", *self.ARGS, "--cluster", "2",
                   "--timeline", str(out)])
        assert rc == 0
        events = validate_timeline_file(str(out))
        assert {e["pid"] for e in events} == {0, 1, 2}

    def test_profile_ffwd_flag(self, capsys):
        import json
        udp = ["--topology", "dumbbell:2",
               "--flows", "fixed:n=2,size=60000,transport=udp"]
        rc = main(["profile", *udp, "--ffwd", "--json"])
        assert rc == 0
        counters = json.loads(capsys.readouterr().out)["counters"]
        assert any(k.startswith("memo.") for k in counters)
        rc = main(["profile", *udp, "--no-ffwd", "--json"])
        assert rc == 0
        counters = json.loads(capsys.readouterr().out)["counters"]
        assert not any(k.startswith("memo.") for k in counters)

    def test_profile_ffwd_env_default(self, capsys, monkeypatch):
        import json
        monkeypatch.setenv("REPRO_FFWD", "1")
        udp = ["--topology", "dumbbell:2",
               "--flows", "fixed:n=2,size=60000,transport=udp"]
        rc = main(["profile", *udp, "--json"])
        assert rc == 0
        counters = json.loads(capsys.readouterr().out)["counters"]
        assert any(k.startswith("memo.") for k in counters)

    def test_stats_json_stdout(self, capsys):
        import json
        rc = main(["stats", *self.ARGS])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        from repro.metrics.timeline import TELEMETRY_SCHEMA_VERSION
        assert report["schema_version"] == TELEMETRY_SCHEMA_VERSION
        assert "flow.completion_time_us" in report["metrics"]["histograms"]

    def test_stats_csv_to_file_with_manifest(self, tmp_path, capsys):
        out = tmp_path / "stats.csv"
        rc = main(["stats", *self.ARGS, "--out", str(out),
                   "--format", "csv"])
        assert rc == 0
        assert out.read_text().startswith("kind,name,field,value")
        assert (tmp_path / "stats.csv.manifest.json").exists()

    def test_stats_cluster_reports_agent_series(self, tmp_path, capsys):
        import json
        out = tmp_path / "stats.json"
        rc = main(["stats", *self.ARGS, "--cluster", "2",
                   "--out", str(out)])
        assert rc == 0
        report = json.loads(out.read_text())
        assert len(report["agent_busy_s"]) == 2
        assert len(report["agent_barrier_wait_s"]) == 2

    def test_progress_suppressed_off_tty(self, capsys):
        rc = main(["profile", *self.ARGS, "--progress"])
        assert rc == 0
        assert "\r" not in capsys.readouterr().err

    def test_progress_meter_renders_on_tty(self):
        import io
        from repro.cli import _Progress

        class Tty(io.StringIO):
            def isatty(self):
                return True

        class FakeEngine:
            class results:
                class events:
                    total = 1000
            _cursor = 5

        stream = Tty()
        meter = _Progress(FakeEngine(), duration_ps=10_000,
                          lookahead_ps=1_000, stream=stream)
        meter._last = -1.0  # defeat throttling
        meter(5)
        meter.close()
        text = stream.getvalue()
        assert "5 windows" in text
        assert "ev/s" in text
        assert "eta" in text

