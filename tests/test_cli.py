"""CLI: spec parsing and command round trips."""

import pytest

from repro.cli import build_flows, build_topology, main, make_parser
from repro.errors import ConfigError
from repro.traffic import Transport


class TestSpecs:
    def test_topology_specs(self):
        assert build_topology("fattree:4").num_hosts == 16
        assert build_topology("dumbbell:3").num_hosts == 6
        assert build_topology("abilene").name == "Abilene"
        assert build_topology("geant").name == "GEANT"
        assert build_topology("isp:5").num_nodes > 100

    def test_unknown_topology(self):
        with pytest.raises(ConfigError):
            build_topology("torus:3")

    def test_mesh_flows(self):
        topo = build_topology("dumbbell:4")
        flows = build_flows("mesh:load=0.5,max=20,seed=3", topo)
        assert 0 < len(flows) <= 20

    def test_fixed_flows_with_transport(self):
        topo = build_topology("dumbbell:4")
        flows = build_flows("fixed:n=5,size=9999,transport=reno", topo)
        assert len(flows) == 5
        assert all(f.transport == Transport.RENO for f in flows)
        assert all(f.size_bytes == 9999 for f in flows)

    def test_bad_flow_spec(self):
        topo = build_topology("dumbbell:2")
        with pytest.raises(ConfigError):
            build_flows("storm:x", topo)
        with pytest.raises(ConfigError):
            build_flows("mesh:oops", topo)


class TestCommands:
    def test_run_dons(self, capsys):
        rc = main(["run", "--topology", "dumbbell:2",
                   "--flows", "fixed:n=2,size=30000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "flows completed : 2/2" in out

    def test_run_ood(self, capsys):
        rc = main(["run", "--engine", "ood", "--topology", "dumbbell:2",
                   "--flows", "fixed:n=2,size=30000"])
        assert rc == 0

    def test_run_numpy_backend(self, capsys):
        pytest.importorskip("numpy")
        rc = main(["run", "--topology", "dumbbell:2",
                   "--flows", "fixed:n=2,size=30000",
                   "--backend", "numpy"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "flows completed : 2/2" in out

    def test_compare_numpy_backend_identical(self, capsys):
        pytest.importorskip("numpy")
        rc = main(["compare", "--topology", "dumbbell:2",
                   "--flows", "fixed:n=2,size=30000",
                   "--backend", "numpy"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "identical       : True" in out

    def test_bad_backend_is_a_parse_error(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(
                ["run", "--backend", "fortran"])

    def test_compare_identical(self, capsys):
        rc = main(["compare", "--topology", "fattree:4",
                   "--flows", "fixed:n=4,size=20000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "identical       : True" in out

    def test_plan(self, capsys):
        rc = main(["plan", "--topology", "fattree:4",
                   "--flows", "mesh:max=40,load=0.5", "--machines", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "machine 0" in out

    def test_viz(self, tmp_path, capsys):
        rc = main(["viz", "--topology", "dumbbell:2",
                   "--flows", "fixed:n=2,size=30000",
                   "--out-dir", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "flows.svg").exists()
        assert (tmp_path / "links.svg").exists()

    def test_error_exit_code(self, capsys):
        rc = main(["run", "--topology", "nope"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err
