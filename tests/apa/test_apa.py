"""APA: ridge core, feature extraction, the DQN-like predictor."""

import numpy as np
import pytest

from repro.apa import (
    DeepQueueNetLike, FEATURE_NAMES, Ridge, baseline_rtt_ps, flow_features,
    standardize,
)
from repro.des import run_baseline
from repro.errors import ConfigError
from repro.metrics import normalized_w1
from repro.scenario import make_scenario
from repro.topology import dumbbell
from repro.traffic import Flow
from repro.units import GBPS


class TestRidge:
    def test_recovers_linear_relationship(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 3))
        w = np.array([2.0, -1.0, 0.5])
        y = X @ w
        model = Ridge(lam=1e-6).fit(X, y)
        assert np.allclose(model.weights, w, atol=1e-3)
        assert model.r2(X, y) > 0.999

    def test_shapes_validated(self):
        with pytest.raises(ConfigError):
            Ridge().fit(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(ConfigError):
            Ridge().fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ConfigError):
            Ridge().predict(np.zeros((1, 2)))

    def test_standardize_round_trip(self):
        X = np.array([[1.0, 10.0], [3.0, 30.0]])
        Z, mean, std = standardize(X)
        assert np.allclose(Z.mean(axis=0), 0)
        Z2, _, _ = standardize(X, mean, std)
        assert np.allclose(Z, Z2)


class TestFeatures:
    def test_feature_matrix_shape(self, dumbbell_scenario):
        feats = flow_features(dumbbell_scenario)
        assert feats.shape == (4, len(FEATURE_NAMES))
        assert np.isfinite(feats).all()
        assert (feats[:, -1] == 1.0).all()  # bias column

    def test_baseline_rtt_physical_floor(self, dumbbell_scenario):
        base = baseline_rtt_ps(dumbbell_scenario)
        res = run_baseline(dumbbell_scenario)
        measured_min = min(r for _t, r, _f in res.rtt_samples)
        # the unloaded estimate can never exceed the best measured RTT
        assert (base <= measured_min * 1.01).all()


class TestDqnLike:
    def _scenario(self, seed, load_bytes=120_000):
        topo = dumbbell(4, edge_rate_bps=10 * GBPS,
                        bottleneck_rate_bps=5 * GBPS)
        flows = [Flow(i, i, 4 + i, load_bytes + seed * 997 + i * 3001, 0)
                 for i in range(4)]
        return make_scenario(topo, flows)

    def _trained(self):
        pairs = []
        for seed in (1, 2, 3):
            sc = self._scenario(seed)
            pairs.append((sc, run_baseline(sc)))
        return DeepQueueNetLike().fit(pairs)

    def test_predict_before_fit_rejected(self, dumbbell_scenario):
        with pytest.raises(ConfigError):
            DeepQueueNetLike().predict(dumbbell_scenario)

    def test_prediction_shape_and_sanity(self, dumbbell_scenario):
        apa = self._trained()
        pred = apa.predict(dumbbell_scenario)
        assert pred.fct_ps.shape == (4,)
        assert (pred.fct_ps > 0).all()
        assert pred.packets_scored > 0
        assert len(pred.rtt_samples_ps) > 0

    def test_fast_but_imperfect(self):
        """The APA's defining trade-off, measured."""
        apa = self._trained()
        test = self._scenario(9)
        truth = run_baseline(test)
        pred = apa.predict(test)
        w1 = normalized_w1(pred.rtt_samples_ps,
                           [r for _t, r, _f in truth.rtt_samples])
        # approximate: not exact, not garbage
        assert 0.0 < w1 < 1.5
        # FCT magnitude in the right decade
        truth_mean = np.mean(truth.fcts_ps())
        assert 0.2 < np.mean(pred.fct_ps) / truth_mean < 5.0

    def test_as_results_container(self, dumbbell_scenario):
        apa = self._trained()
        res = apa.predict(dumbbell_scenario).as_results(dumbbell_scenario)
        assert res.engine == "dqn-apa"
        assert res.completed() == 4

    def test_empty_training_rejected(self):
        with pytest.raises(ConfigError):
            DeepQueueNetLike().fit([])
