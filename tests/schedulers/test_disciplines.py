"""The four packet schedulers: FIFO, SP, RR, DRR."""

import pytest

from repro.errors import ConfigError
from repro.protocols.packet import data_row
from repro.schedulers import (
    DeficitRoundRobinScheduler, FifoScheduler, RoundRobinScheduler,
    SchedulerKind, StrictPriorityScheduler, make_scheduler,
)


def row(flow, seq, payload=1000):
    return data_row(flow, seq, payload, 0, 0, 1)


def drain(sched):
    out = []
    while True:
        r = sched.dequeue()
        if r is None:
            return out
        out.append(r)


class TestFifo:
    def test_order_preserved_across_classes(self):
        s = FifoScheduler()
        s.enqueue(2, row(0, 0))
        s.enqueue(0, row(1, 0))
        s.enqueue(1, row(2, 0))
        assert [r[0] for r in drain(s)] == [0, 1, 2]

    def test_empty_dequeue(self):
        assert FifoScheduler().dequeue() is None

    def test_len_tracks(self):
        s = FifoScheduler()
        for i in range(5):
            s.enqueue(0, row(0, i))
        assert len(s) == 5
        s.dequeue()
        assert len(s) == 4


class TestStrictPriority:
    def test_lowest_class_wins(self):
        s = StrictPriorityScheduler(3)
        s.enqueue(2, row(2, 0))
        s.enqueue(0, row(0, 0))
        s.enqueue(1, row(1, 0))
        s.enqueue(0, row(0, 1))
        assert [r[0] for r in drain(s)] == [0, 0, 1, 2]

    def test_starvation_is_real(self):
        s = StrictPriorityScheduler(2)
        s.enqueue(1, row(9, 0))
        for i in range(10):
            s.enqueue(0, row(0, i))
        out = drain(s)
        assert out[-1][0] == 9  # low priority served dead last


class TestRoundRobin:
    def test_alternates_between_classes(self):
        s = RoundRobinScheduler(2)
        for i in range(3):
            s.enqueue(0, row(0, i))
            s.enqueue(1, row(1, i))
        assert [r[0] for r in drain(s)] == [0, 1, 0, 1, 0, 1]

    def test_skips_empty_classes(self):
        s = RoundRobinScheduler(4)
        s.enqueue(1, row(1, 0))
        s.enqueue(3, row(3, 0))
        assert [r[0] for r in drain(s)] == [1, 3]

    def test_clamps_out_of_range_class(self):
        s = RoundRobinScheduler(2)
        s.enqueue(99, row(7, 0))
        assert drain(s)[0][0] == 7


class TestDrr:
    def test_byte_fairness_with_unequal_sizes(self):
        # class 0 sends 300B packets, class 1 sends 1500B packets:
        # over a long run both classes move ~equal bytes.
        s = DeficitRoundRobinScheduler(2, quantum_bytes=1500)
        for i in range(200):
            s.enqueue(0, row(0, i, payload=300 - 60))
            if i < 40:
                s.enqueue(1, row(1, i, payload=1500 - 60))
        sent = {0: 0, 1: 0}
        for _ in range(120):
            r = s.dequeue()
            sent[r[0]] += r[3]
        ratio = sent[0] / sent[1]
        assert 0.6 < ratio < 1.6, sent

    def test_quantum_smaller_than_packet_accrues(self):
        s = DeficitRoundRobinScheduler(1, quantum_bytes=100)
        s.enqueue(0, row(0, 0, payload=1000))
        r = s.dequeue()  # must eventually accrue 1060 bytes of deficit
        assert r is not None and r[2] == 0

    def test_idle_resets_deficit(self):
        s = DeficitRoundRobinScheduler(2, quantum_bytes=5000)
        s.enqueue(0, row(0, 0))
        s.dequeue()
        assert s.dequeue() is None
        assert s.deficit == [0, 0]

    def test_invalid_quantum(self):
        with pytest.raises(ConfigError):
            DeficitRoundRobinScheduler(1, quantum_bytes=0)


class TestFactory:
    @pytest.mark.parametrize("kind,cls", [
        (SchedulerKind.FIFO, FifoScheduler),
        (SchedulerKind.SP, StrictPriorityScheduler),
        (SchedulerKind.RR, RoundRobinScheduler),
        (SchedulerKind.DRR, DeficitRoundRobinScheduler),
    ])
    def test_make_scheduler(self, kind, cls):
        assert isinstance(make_scheduler(kind, 3), cls)

    def test_iter_rows_sees_all(self):
        s = make_scheduler(SchedulerKind.SP, 2)
        s.enqueue(0, row(0, 0))
        s.enqueue(1, row(1, 0))
        assert len(list(s.iter_rows())) == 2

    def test_lazy_compaction_correct(self):
        s = FifoScheduler()
        for i in range(500):
            s.enqueue(0, row(0, i))
        out = [s.dequeue()[2] for _ in range(300)]
        for i in range(500, 600):
            s.enqueue(0, row(0, i))
        out += [r[2] for r in drain(s)]
        assert out == list(range(600))
