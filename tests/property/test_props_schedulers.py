"""Property-based tests: scheduler invariants.

Work conservation (a non-empty scheduler always yields), conservation of
packets (everything enqueued comes out exactly once), and per-class FIFO
order (no discipline reorders packets *within* a class).
"""

from hypothesis import given, settings, strategies as st

from repro.protocols.packet import data_row
from repro.schedulers import SchedulerKind, make_scheduler

KINDS = list(SchedulerKind)

# (class, payload) sequences
packet_lists = st.lists(
    st.tuples(st.integers(0, 3), st.integers(1, 9000)),
    min_size=1, max_size=120,
)


def fill(kind, packets, num_classes=4):
    sched = make_scheduler(kind, num_classes, drr_quantum_bytes=1500)
    rows = []
    for seq, (cls, payload) in enumerate(packets):
        row = data_row(cls, seq, payload, 0, 0, 1)
        sched.enqueue(cls, row)
        rows.append(row)
    return sched, rows


@given(st.sampled_from(KINDS), packet_lists)
def test_conservation(kind, packets):
    sched, rows = fill(kind, packets)
    out = []
    for _ in range(len(rows)):
        r = sched.dequeue()
        assert r is not None, "work conservation violated"
        out.append(r)
    assert sched.dequeue() is None
    assert sorted(out) == sorted(rows)


@given(st.sampled_from(KINDS), packet_lists)
def test_within_class_fifo(kind, packets):
    sched, rows = fill(kind, packets)
    out = []
    while True:
        r = sched.dequeue()
        if r is None:
            break
        out.append(r)
    for cls in range(4):
        # FIFO collapses all classes to 0; compare global order there.
        if kind == SchedulerKind.FIFO:
            assert [r[2] for r in out] == [r[2] for r in rows]
            return
        seqs = [r[2] for r in out if r[0] == cls]
        expected = [r[2] for r in rows if r[0] == cls]
        assert seqs == expected, f"class {cls} reordered by {kind}"


@given(packet_lists)
def test_strict_priority_dominance(packets):
    sched, rows = fill(SchedulerKind.SP, packets)
    out = []
    while True:
        r = sched.dequeue()
        if r is None:
            break
        out.append(r)
    # Since nothing is enqueued mid-drain, output classes are sorted.
    classes = [r[0] for r in out]
    assert classes == sorted(classes)


@given(packet_lists, st.integers(100, 4000))
def test_drr_interleaved_enqueue_dequeue(packets, quantum):
    """DRR must stay conservative under interleaved operation."""
    sched = make_scheduler(SchedulerKind.DRR, 4, drr_quantum_bytes=quantum)
    pending = 0
    dequeued = 0
    for seq, (cls, payload) in enumerate(packets):
        sched.enqueue(cls, data_row(cls, seq, payload, 0, 0, 1))
        pending += 1
        if seq % 3 == 2:
            assert sched.dequeue() is not None
            pending -= 1
            dequeued += 1
    while pending:
        assert sched.dequeue() is not None
        pending -= 1
        dequeued += 1
    assert dequeued == len(packets)
