"""Property-based tests: Wasserstein metrics and the cache simulator."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.machine import CacheConfig, CacheSim
from repro.metrics import load_vector_distance, wasserstein_1d

floats = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
samples = st.lists(floats, min_size=1, max_size=80)


class TestWassersteinProps:
    @given(samples, samples)
    def test_nonnegative_and_symmetric(self, a, b):
        d = wasserstein_1d(a, b)
        assert d >= 0
        assert d == pytest.approx(wasserstein_1d(b, a), rel=1e-9, abs=1e-9)

    @given(samples)
    def test_identity(self, a):
        assert wasserstein_1d(a, a) == pytest.approx(0.0, abs=1e-9)

    @given(samples, floats)
    def test_translation_equivariance(self, a, shift):
        b = [x + shift for x in a]
        assert wasserstein_1d(a, b) == pytest.approx(abs(shift),
                                                     rel=1e-6, abs=1e-6)

    @given(samples, samples, samples)
    def test_triangle_inequality(self, a, b, c):
        ab = wasserstein_1d(a, b)
        bc = wasserstein_1d(b, c)
        ac = wasserstein_1d(a, c)
        assert ac <= ab + bc + 1e-6

    @given(samples, samples)
    @settings(deadline=None)
    def test_matches_scipy(self, a, b):
        scipy_stats = pytest.importorskip("scipy.stats")
        assert wasserstein_1d(a, b) == pytest.approx(
            scipy_stats.wasserstein_distance(a, b), rel=1e-6, abs=1e-6)


class TestLoadVectorProps:
    loads = st.lists(st.floats(min_value=0, max_value=1e9,
                               allow_nan=False), min_size=2, max_size=50)

    @given(loads)
    def test_self_distance_zero(self, v):
        assume(sum(v) > 0)
        assert load_vector_distance(v, v) == pytest.approx(0.0, abs=1e-12)

    @given(loads, st.floats(min_value=0.1, max_value=100))
    def test_scale_invariance(self, v, k):
        assume(sum(v) > 0)
        scaled = [k * x for x in v]
        # Scaling a subnormal load by k < 1 can underflow the whole
        # vector to zero mass, where the distance is 1 by definition —
        # invariance only holds while the scaled mass stays positive.
        assume(sum(scaled) > 0)
        assert load_vector_distance(v, scaled) == pytest.approx(0.0, abs=1e-9)

    @given(loads, loads)
    def test_bounded_unit_interval(self, a, b):
        assume(len(a) == len(b))
        d = load_vector_distance(a, b)
        assert 0.0 <= d <= 1.0 + 1e-9


class TestCacheProps:
    addr_lists = st.lists(st.integers(0, 1 << 22), min_size=1, max_size=400)

    @given(addr_lists)
    def test_misses_never_exceed_accesses(self, addrs):
        sim = CacheSim(CacheConfig(size_bytes=16 * 1024, ways=4))
        stats = sim.run(addrs)
        assert 0 <= stats.misses <= stats.accesses == len(addrs)

    @given(addr_lists)
    def test_repeat_pass_is_no_worse(self, addrs):
        """Replaying a (cache-fitting) stream twice cannot miss more the
        second time if the working set fits."""
        small = [a % (8 * 1024) for a in addrs]  # fits an 16K cache
        sim = CacheSim(CacheConfig(size_bytes=16 * 1024, ways=4,
                                   prefetch_degree=0))
        first = sim.run(small).misses
        sim.stats.misses = 0
        sim.stats.accesses = 0
        second = sim.run(small).misses
        assert second <= first

    @given(addr_lists)
    def test_bigger_cache_never_hurts_without_prefetch(self, addrs):
        """LRU is a stack algorithm: miss count is monotone in capacity
        (with the prefetcher off and fixed associativity geometry)."""
        small = CacheSim(CacheConfig(size_bytes=4 * 1024, ways=64,
                                     prefetch_degree=0))
        big = CacheSim(CacheConfig(size_bytes=64 * 1024, ways=1024,
                                   prefetch_degree=0))
        assert big.run(addrs).misses <= small.run(addrs).misses

    @given(addr_lists)
    def test_set_occupancy_bounded(self, addrs):
        cfg = CacheConfig(size_bytes=16 * 1024, ways=4)
        sim = CacheSim(cfg)
        sim.run(addrs)
        assert all(len(s) <= cfg.ways for s in sim._sets)
