"""Property-based test: arbitrary migration schedules preserve traces.

Randomized partitions at randomized window boundaries — if any piece of
node state (port queues, calendar entries, transport rows) failed to
migrate, the cluster trace would diverge from the single-machine one.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.agent import AgentEngine
from repro.cluster.manager import ClusterController, merge_results
from repro.core.engine import run_dons
from repro.des.partition_types import random_partition
from repro.metrics import TraceLevel
from repro.scenario import make_scenario
from repro.topology import fattree
from repro.traffic import full_mesh_dynamic, TINY
from repro.units import GBPS, ms, us

_TOPO = fattree(4, rate_bps=10 * GBPS, delay_ps=us(1))
_FLOWS = full_mesh_dynamic(_TOPO.hosts, ms(0.3), load=0.5,
                           host_rate_bps=10 * GBPS, sizes=TINY,
                           seed=23, max_flows=30)
_SCENARIO = make_scenario(_TOPO, _FLOWS, buffer_bytes=60_000)
_REFERENCE = run_dons(_SCENARIO, TraceLevel.FULL)


@given(
    machines=st.integers(min_value=2, max_value=4),
    boundaries=st.lists(st.integers(min_value=1, max_value=300),
                        min_size=1, max_size=3, unique=True),
    seeds=st.lists(st.integers(min_value=0, max_value=10_000),
                   min_size=4, max_size=4),
)
@settings(max_examples=15, deadline=None)
def test_random_migration_schedules_preserve_trace(machines, boundaries,
                                                   seeds):
    first = random_partition(_TOPO, machines, seeds[0])
    schedule = [
        (window, random_partition(_TOPO, machines, seed))
        for window, seed in zip(sorted(boundaries), seeds[1:])
    ]
    agents = [
        AgentEngine(a, _SCENARIO, first, TraceLevel.FULL)
        for a in range(machines)
    ]
    controller = ClusterController(agents, schedule=schedule)
    merged = merge_results(controller.run(), _SCENARIO.name)
    assert (sorted(merged.trace.entries)
            == sorted(_REFERENCE.trace.entries))
    assert merged.fcts_ps() == _REFERENCE.fcts_ps()
