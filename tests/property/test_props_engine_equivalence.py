"""Property-based fidelity: hypothesis-generated scenarios, two engines,
one trace.  This is the strongest test in the repository — any semantic
divergence between the OOD and DOD engines shows up here first."""

from hypothesis import given, settings, strategies as st

from repro.core.engine import run_dons
from repro.des import run_baseline
from repro.metrics import TraceLevel
from repro.scenario import make_scenario
from repro.schedulers import SchedulerKind
from repro.topology import dumbbell, fattree
from repro.traffic import Flow, Transport
from repro.units import GBPS, us


@st.composite
def scenarios(draw):
    shape = draw(st.sampled_from(["dumbbell", "fattree"]))
    if shape == "dumbbell":
        pairs = draw(st.integers(min_value=2, max_value=6))
        bottleneck = draw(st.sampled_from([1, 2, 10])) * GBPS
        topo = dumbbell(pairs, edge_rate_bps=10 * GBPS,
                        bottleneck_rate_bps=bottleneck,
                        delay_ps=us(draw(st.integers(1, 5))))
    else:
        topo = fattree(4, rate_bps=10 * GBPS,
                       delay_ps=us(draw(st.integers(1, 3))))
    hosts = topo.hosts
    n_flows = draw(st.integers(min_value=1, max_value=8))
    flows = []
    for i in range(n_flows):
        src = hosts[draw(st.integers(0, len(hosts) - 1))]
        dst_candidates = [h for h in hosts if h != src]
        dst = dst_candidates[draw(st.integers(0, len(dst_candidates) - 1))]
        flows.append(Flow(
            i, src, dst,
            size_bytes=draw(st.integers(1_000, 120_000)),
            start_ps=draw(st.integers(0, 40)) * us(1),
            transport=draw(st.sampled_from([Transport.DCTCP,
                                            Transport.UDP])),
            priority=draw(st.integers(0, 2)),
        ))
    sched = draw(st.sampled_from(list(SchedulerKind)))
    buffer_bytes = draw(st.sampled_from([12_000, 60_000, 4_000_000]))
    return make_scenario(topo, flows, scheduler=sched, num_classes=3,
                         buffer_bytes=buffer_bytes)


@given(scenarios())
@settings(max_examples=25, deadline=None)
def test_generated_scenarios_trace_equal(scenario):
    a = run_baseline(scenario, TraceLevel.FULL)
    b = run_dons(scenario, TraceLevel.FULL)
    assert a.trace.sorted_entries() == b.trace.sorted_entries()
    assert a.rtt_samples == b.rtt_samples
    assert a.fcts_ps() == b.fcts_ps()
    # DCTCP recovers losses; UDP does not, so a dropped UDP segment
    # legitimately leaves its flow incomplete.
    from repro.traffic import Transport
    for flow in scenario.flows:
        if flow.transport == Transport.DCTCP:
            assert a.flows[flow.flow_id].complete_ps is not None
    if a.drops == 0:
        assert a.completed() == len(scenario.flows)
