"""Property-based tests: DCTCP state-machine invariants under arbitrary
(well-formed) ACK/timeout sequences."""

from hypothesis import given, settings, strategies as st

from repro.protocols.dctcp import DctcpParams, DctcpState
from repro.units import us


@st.composite
def ack_scripts(draw):
    """A plausible interleaving of cumulative acks, dups and timeouts."""
    total = draw(st.integers(min_value=1, max_value=60))
    steps = draw(st.lists(
        st.tuples(
            st.sampled_from(["ack", "dup", "timeout"]),
            st.booleans(),                    # ece
            st.integers(min_value=1, max_value=5),  # ack advance
        ),
        max_size=120,
    ))
    return total, steps


@given(ack_scripts())
@settings(max_examples=200, deadline=None)
def test_invariants_hold_through_any_script(script):
    total, steps = script
    s = DctcpState(flow_id=0, total_segs=total, params=DctcpParams())
    inflight = set(s.on_start(0))
    sent = set(inflight)
    now = us(1)

    for kind, ece, advance in steps:
        if s.done:
            break
        now += us(3)
        if kind == "ack":
            # a receiver can only ack data that was actually sent
            target = min(s.snd_una + advance, total, s.next_seq)
            if target <= s.snd_una:
                continue
            out = s.on_ack(target, int(ece), now - us(2), now)
        elif kind == "dup":
            out = s.on_ack(s.snd_una, int(ece), now - us(2), now)
        else:
            if s.rtx_deadline is None:
                continue
            out = s.on_timeout(s.rtx_deadline)
            now = max(now, s.rtx_deadline)
        sent.update(out)

        # --- invariants --------------------------------------------------
        assert 0 <= s.snd_una <= s.next_seq <= total
        assert s.cwnd >= 1.0
        assert 0.0 <= s.alpha <= 1.0
        assert s.rto_ps >= s.params.min_rto_ps or s.srtt_ps == 0
        assert 1 <= s.backoff <= 64
        assert all(0 <= seq < total for seq in out)
        # only previously-unsent or lost-and-unacked segments go out
        for seq in out:
            assert seq >= s.snd_una or seq in sent
        if s.done:
            assert s.snd_una == total
            assert s.rtx_deadline is None

    # progress is never negative and never exceeds the flow
    assert s.next_seq <= total


@given(st.integers(min_value=1, max_value=200))
@settings(deadline=None)
def test_clean_run_completes(total):
    """Acking everything in order always completes the flow."""
    s = DctcpState(flow_id=0, total_segs=total, params=DctcpParams())
    outstanding = list(s.on_start(0))
    now = 0
    guard = 0
    while not s.done:
        guard += 1
        assert guard < 10_000, "no progress"
        now += us(5)
        ack_to = s.snd_una + 1
        outstanding.extend(s.on_ack(ack_to, 0, now - us(4), now))
    assert s.snd_una == total
    assert sorted(set(outstanding)) == list(range(total))
