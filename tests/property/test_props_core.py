"""Property-based tests: core data structures and pure functions."""

from hypothesis import given, settings, strategies as st

from repro.core.ecs import CommandBuffer, FieldSpec, SoATable, consolidate
from repro.core.runtime import chunk_ranges
from repro.protocols.packet import segment_count, segment_payload, MSS
from repro.rng import ecmp_hash
from repro.units import GBPS, serialization_time_ps


@given(st.integers(min_value=1, max_value=10**7))
@settings(deadline=None)
def test_segmentation_reassembles_exactly(size):
    total = segment_count(size)
    assert sum(segment_payload(size, s) for s in range(total)) == size
    assert all(1 <= segment_payload(size, s) <= MSS for s in range(total))


@given(st.integers(min_value=0, max_value=10**7),
       st.integers(min_value=0, max_value=10**7),
       st.sampled_from([1, 10, 40, 100, 400]))
def test_serialization_superadditive_never_negative(a, b, gbps):
    rate = gbps * GBPS
    ta = serialization_time_ps(a, rate)
    tb = serialization_time_ps(b, rate)
    tab = serialization_time_ps(a + b, rate)
    # floor-division rounding can only lose < 1 ps per term
    assert 0 <= tab - (ta + tb) <= 2
    assert ta >= 0


@given(st.lists(st.integers(min_value=0, max_value=2**64 - 1),
                min_size=1, max_size=4))
def test_ecmp_hash_stable_and_bounded(values):
    h = ecmp_hash(*values)
    assert h == ecmp_hash(*values)
    assert 0 <= h < 2**64


@given(st.integers(min_value=0, max_value=5000),
       st.integers(min_value=1, max_value=64))
def test_chunk_ranges_partition_exactly(n, parts):
    out = []
    for a, b in chunk_ranges(n, parts):
        assert a < b
        out.extend(range(a, b))
    assert out == list(range(n))
    if n:
        sizes = [b - a for a, b in chunk_ranges(n, parts)]
        assert max(sizes) - min(sizes) <= 1


@given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 10**6)),
                max_size=200),
       st.integers(min_value=1, max_value=8))
def test_command_buffer_consolidation_preserves_everything(entries, workers):
    buffers = [CommandBuffer() for _ in range(workers)]
    for i, (target, item) in enumerate(entries):
        buffers[i % workers].append(target, item)
    sink = {}
    n = consolidate(buffers, sink)
    assert n == len(entries)
    flat = [(t, i) for t, items in sink.items() for i in items]
    assert sorted(flat) == sorted(entries)


@given(st.lists(st.integers(-10**9, 10**9), min_size=1, max_size=300))
def test_soa_table_columns_mirror_inserts(values):
    t = SoATable("x", (FieldSpec("v", 0), FieldSpec("w", -1)))
    for v in values:
        t.add(v=v)
    assert t.col("v") == values
    assert t.col("w") == [-1] * len(values)
    assert len(t) == len(values)
    total_chunk = sum(b - a for a, b in t.chunks())
    assert total_chunk == len(values)
