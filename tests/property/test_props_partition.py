"""Property-based tests: MBC bisection and partition invariants on
random connected topologies."""

from hypothesis import assume, given, settings, strategies as st

from repro.des.partition_types import Partition, random_partition
from repro.partition import ClusterSpec, completion_time, mbc_bisect
from repro.partition.loadest import LoadModel
from repro.topology import Topology
from repro.units import GBPS, us

import numpy as np


@st.composite
def random_topologies(draw):
    """Connected random switch graphs with a few hosts."""
    n_switches = draw(st.integers(min_value=3, max_value=16))
    topo = Topology("random")
    switches = [topo.add_switch() for _ in range(n_switches)]
    # spanning tree first (always connected)
    for i in range(1, n_switches):
        parent = draw(st.integers(min_value=0, max_value=i - 1))
        topo.add_link(switches[i], switches[parent], 10 * GBPS, us(1))
    # extra chords
    extra = draw(st.integers(min_value=0, max_value=n_switches))
    for _ in range(extra):
        a = draw(st.integers(min_value=0, max_value=n_switches - 1))
        b = draw(st.integers(min_value=0, max_value=n_switches - 1))
        if a != b:
            topo.add_link(switches[a], switches[b], 10 * GBPS, us(1))
    for i in range(min(3, n_switches)):
        h = topo.add_host()
        topo.add_link(h, switches[i], 10 * GBPS, us(1))
    return topo.freeze()


@given(random_topologies(), st.integers(0, 1000))
@settings(max_examples=60, deadline=None)
def test_mbc_is_a_bisection(topo, weight_seed):
    rng = np.random.default_rng(weight_seed)
    nodes = list(range(topo.num_nodes))
    node_w = rng.uniform(0.1, 10.0, size=topo.num_nodes)
    edge_w = rng.uniform(0.0, 5.0, size=topo.num_links)
    a, b = mbc_bisect(topo, nodes, node_w, edge_w, balance_tol=0.3)
    assert a | b == set(nodes)
    assert not (a & b)
    assert a and b
    # balance within tolerance (plus one node's weight of slack for the
    # discrete seed growth)
    total = node_w.sum()
    wa = sum(node_w[n] for n in a)
    assert total * 0.2 - node_w.max() <= wa <= total * 0.8 + node_w.max()


@given(random_topologies(), st.integers(1, 6), st.integers(0, 99))
@settings(max_examples=60, deadline=None)
def test_random_partition_wellformed(topo, k, seed):
    assume(k <= topo.num_nodes)
    p = random_partition(topo, k, seed)
    assert len(p.assignment) == topo.num_nodes
    assert set(p.assignment) <= set(range(k))
    assert sum(p.part_sizes()) == topo.num_nodes
    # cut links are exactly those with endpoints in different parts
    for link in topo.links:
        expected = p.part_of(link.node_a) != p.part_of(link.node_b)
        assert p.is_cut(topo, link.link_id) == expected


@given(random_topologies(), st.integers(0, 99))
@settings(max_examples=40, deadline=None)
def test_completion_time_monotone_in_capacity(topo, seed):
    rng = np.random.default_rng(seed)
    loads = LoadModel(rng.uniform(0, 1e6, topo.num_nodes),
                      rng.uniform(0, 1e6, topo.num_links))
    k = min(2, topo.num_nodes)
    part = random_partition(topo, k, seed)
    slow = ClusterSpec.homogeneous(k, compute=1e6)
    fast = ClusterSpec.homogeneous(k, compute=1e9)
    assert (completion_time(topo, part, loads, fast)
            <= completion_time(topo, part, loads, slow))
