"""Scenario serialization: JSON round trips preserve behaviour exactly."""

import io
import json

import pytest

from repro.core.engine import run_dons
from repro.errors import ConfigError
from repro.metrics import TraceLevel
from repro.protocols import AqmConfig, AqmKind
from repro.scenario import make_scenario
from repro.scenario_io import FORMAT, scenario_from_json, scenario_to_json
from repro.schedulers import SchedulerKind
from repro.topology import fattree
from repro.traffic import Flow, Transport
from repro.units import GBPS, us


@pytest.fixture
def rich_scenario():
    topo = fattree(4, rate_bps=10 * GBPS, delay_ps=us(2))
    hosts = topo.hosts
    flows = [
        Flow(0, hosts[0], hosts[9], 44_000, 0, Transport.DCTCP, 1),
        Flow(1, hosts[3], hosts[12], 20_000, us(5), Transport.UDP),
        Flow(2, hosts[5], hosts[0], 60_000, us(2), Transport.RENO, 2),
    ]
    return make_scenario(topo, flows, scheduler=SchedulerKind.DRR,
                         num_classes=3, buffer_bytes=77_000,
                         aqm=AqmConfig(kind=AqmKind.RED),
                         duration_ps=us(800), ecmp_mode="packet")


def test_round_trip_structural(rich_scenario):
    loaded = scenario_from_json(scenario_to_json(rich_scenario))
    assert loaded.name == rich_scenario.name
    assert loaded.topology.num_nodes == rich_scenario.topology.num_nodes
    assert loaded.topology.num_links == rich_scenario.topology.num_links
    assert loaded.flows == rich_scenario.flows
    assert loaded.switch_egress == rich_scenario.switch_egress
    assert loaded.host_egress == rich_scenario.host_egress
    assert loaded.dctcp == rich_scenario.dctcp
    assert loaded.reno == rich_scenario.reno
    assert loaded.duration_ps == rich_scenario.duration_ps
    assert loaded.ecmp_mode == "packet"


def test_round_trip_preserves_simulation_exactly(rich_scenario):
    """The real bar: a reloaded scenario produces the identical trace."""
    original = run_dons(rich_scenario, TraceLevel.FULL)
    loaded = scenario_from_json(scenario_to_json(rich_scenario))
    replay = run_dons(loaded, TraceLevel.FULL)
    assert replay.trace.digest() == original.trace.digest()
    assert replay.fcts_ps() == original.fcts_ps()


def test_stream_io(rich_scenario, tmp_path):
    path = tmp_path / "scenario.json"
    with open(path, "w") as fh:
        scenario_to_json(rich_scenario, out=fh)
    with open(path) as fh:
        loaded = scenario_from_json(fh)
    assert loaded.flows == rich_scenario.flows


def test_format_guard(rich_scenario):
    doc = json.loads(scenario_to_json(rich_scenario))
    doc["format"] = "something-else"
    with pytest.raises(ConfigError):
        scenario_from_json(json.dumps(doc))


def test_document_is_plain_json(rich_scenario):
    doc = json.loads(scenario_to_json(rich_scenario))
    assert doc["format"] == FORMAT
    assert {"topology", "flows", "switch_egress", "host_egress"} <= set(doc)
    assert doc["flows"][2]["transport"] == "reno"
