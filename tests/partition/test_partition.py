"""Partitioning: load estimator, time-cost, MBC, Algorithm 1, baselines."""

import numpy as np
import pytest

from repro.des.partition_types import Partition
from repro.errors import PartitionError
from repro.partition import (
    ClusterSpec, balanced_cut, balanced_cut_plan, cfp_partition,
    completion_time, cut_weight, dons_partition, estimate_loads,
    estimate_scenario_loads, machine_times, mbc_bisect, plan_scenario,
    time_binned_loads,
)
from repro.routing import build_fib
from repro.scenario import make_scenario
from repro.topology import dumbbell, fattree, isp_wan
from repro.traffic import Flow, full_mesh_dynamic, TINY
from repro.units import GBPS, ms, us


class TestLoadEstimator:
    def test_single_flow_path_loads(self, small_dumbbell):
        fib = build_fib(small_dumbbell)
        flows = [Flow(0, 0, 4, 1000, 0)]
        loads = estimate_loads(small_dumbbell, fib, flows)
        # path: h0 -> swL -> swR -> h4
        for node in (0, 8, 9, 4):
            assert loads.node_load[node] == 1000
        assert loads.node_load[1] == 0
        # bottleneck link carries the flow
        bottleneck = small_dumbbell.num_links - 1
        assert loads.link_load[bottleneck] == 1000

    def test_loads_accumulate(self, small_dumbbell):
        fib = build_fib(small_dumbbell)
        flows = [Flow(i, i, 4 + i, 1000, 0) for i in range(4)]
        loads = estimate_loads(small_dumbbell, fib, flows)
        bottleneck = small_dumbbell.num_links - 1
        assert loads.link_load[bottleneck] == 4000
        assert loads.node_load[8] == 4000

    def test_correlates_with_measured_events(self, fattree4_scenario):
        from repro.des import run_baseline
        loads = estimate_scenario_loads(fattree4_scenario)
        res = run_baseline(fattree4_scenario)
        topo = fattree4_scenario.topology
        measured = np.array(
            [res.node_events.get(n, 0) for n in range(topo.num_nodes)],
            dtype=float)
        corr = np.corrcoef(measured, loads.node_load)[0, 1]
        assert corr > 0.8, f"estimator diverges from reality: corr={corr:.2f}"

    def test_time_binned_loads(self, small_dumbbell):
        fib = build_fib(small_dumbbell)
        flows = [Flow(0, 0, 4, 1000, 0), Flow(1, 1, 5, 1000, ms(3))]
        bins = time_binned_loads(small_dumbbell, fib, flows, bin_ps=ms(1))
        assert len(bins) == 4
        assert bins[0].total() > 0
        assert bins[1].total() == 0
        assert bins[3].total() > 0


class TestTimeCost:
    def test_cluster_spec_validation(self):
        with pytest.raises(PartitionError):
            ClusterSpec([], [])
        with pytest.raises(PartitionError):
            ClusterSpec([1.0], [1.0, 2.0])
        with pytest.raises(PartitionError):
            ClusterSpec([0.0], [1.0])

    def test_completion_is_max_of_machines(self, small_dumbbell):
        fib = build_fib(small_dumbbell)
        loads = estimate_loads(small_dumbbell, fib,
                               [Flow(0, 0, 4, 10_000, 0)])
        part = Partition(tuple([0] * 4 + [1] * 4 + [0, 1]), 2)
        cluster = ClusterSpec.homogeneous(2)
        times = machine_times(small_dumbbell, part, loads, cluster)
        assert completion_time(small_dumbbell, part, loads, cluster) == max(times)

    def test_faster_machine_lowers_time(self, small_dumbbell):
        fib = build_fib(small_dumbbell)
        loads = estimate_loads(small_dumbbell, fib,
                               [Flow(0, 0, 4, 10_000, 0)])
        part = Partition(tuple([0] * 4 + [1] * 4 + [0, 1]), 2)
        slow = ClusterSpec([1e6, 1e6], [40e9, 40e9])
        fast = ClusterSpec([1e9, 1e9], [40e9, 40e9])
        assert (completion_time(small_dumbbell, part, loads, fast)
                < completion_time(small_dumbbell, part, loads, slow))

    def test_too_many_parts_rejected(self, small_dumbbell):
        fib = build_fib(small_dumbbell)
        loads = estimate_loads(small_dumbbell, fib, [Flow(0, 0, 4, 1, 0)])
        part = Partition(tuple([i % 3 for i in range(10)]), 3)
        with pytest.raises(PartitionError):
            machine_times(small_dumbbell, part, loads,
                          ClusterSpec.homogeneous(2))


class TestMbc:
    def test_bisects_both_sides_nonempty(self, fattree4):
        n = fattree4.num_nodes
        node_w = [1.0] * n
        edge_w = [1.0] * fattree4.num_links
        a, b = mbc_bisect(fattree4, range(n), node_w, edge_w)
        assert a and b
        assert a | b == set(range(n))
        assert not (a & b)

    def test_balance_respected(self, fattree4):
        n = fattree4.num_nodes
        node_w = [1.0] * n
        edge_w = [1.0] * fattree4.num_links
        a, b = mbc_bisect(fattree4, range(n), node_w, edge_w,
                          balance_tol=0.15)
        assert abs(len(a) - n / 2) <= 0.16 * n

    def test_heavy_edges_avoided(self):
        """Two cliques joined by one light link: the cut must take it."""
        from repro.topology import Topology
        topo = Topology("barbell")
        left = [topo.add_switch() for _ in range(4)]
        right = [topo.add_switch() for _ in range(4)]
        heavy = []
        for group in (left, right):
            for i in range(4):
                for j in range(i + 1, 4):
                    heavy.append(topo.add_link(group[i], group[j]))
        bridge = topo.add_link(left[0], right[0])
        topo.freeze()
        edge_w = [100.0] * topo.num_links
        edge_w[bridge] = 0.1
        a, b = mbc_bisect(topo, range(8), [1.0] * 8, edge_w)
        assert cut_weight(topo, a, set(range(8)), edge_w) == pytest.approx(0.1)

    def test_tiny_inputs_rejected(self, fattree4):
        with pytest.raises(PartitionError):
            mbc_bisect(fattree4, [0], [1.0], [1.0])


class TestPartitioner:
    def _setup(self, k_machines=4):
        topo = fattree(4, rate_bps=10 * GBPS, delay_ps=us(1))
        flows = full_mesh_dynamic(topo.hosts, ms(1), load=0.4,
                                  host_rate_bps=10 * GBPS, sizes=TINY,
                                  seed=3, max_flows=200)
        sc = make_scenario(topo, flows)
        loads = estimate_scenario_loads(sc)
        return topo, sc, loads, ClusterSpec.homogeneous(k_machines)

    def test_respects_machine_budget(self):
        topo, _sc, loads, cluster = self._setup(4)
        plan = dons_partition(topo, loads, cluster)
        assert plan.partition.num_parts == 4
        assert len(set(plan.partition.assignment)) <= 4

    def test_beats_balanced_cut(self):
        topo, _sc, loads, cluster = self._setup(8)
        plan = dons_partition(topo, loads, cluster)
        base = balanced_cut_plan(topo, 8, loads, cluster)
        assert plan.estimated_time_s <= base.estimated_time_s

    def test_single_machine_short_circuit(self):
        topo, _sc, loads, _ = self._setup()
        plan = dons_partition(topo, loads, ClusterSpec.homogeneous(1))
        assert set(plan.partition.assignment) == {0}
        assert plan.bisections == 0

    def test_plan_scenario_entry_point(self):
        _topo, sc, _loads, cluster = self._setup(4)
        plan = plan_scenario(sc, cluster)
        assert plan.estimated_time_s > 0
        assert plan.planning_time_s >= 0

    def test_heterogeneous_heaviest_to_fastest(self):
        topo, _sc, loads, _ = self._setup()
        cluster = ClusterSpec([4e9, 1e9], [40e9, 40e9])
        plan = dons_partition(topo, loads, cluster)
        load_per_machine = [0.0, 0.0]
        for node, part in enumerate(plan.partition.assignment):
            load_per_machine[part] += loads.node_load[node]
        assert load_per_machine[0] >= load_per_machine[1]


class TestBaselines:
    def test_balanced_cut_even_counts(self, fattree4):
        part = balanced_cut(fattree4, 4)
        sizes = part.part_sizes()
        assert max(sizes) - min(sizes) <= 1

    def test_cfp_prefers_cutting_long_delay_links(self):
        from repro.topology import Topology
        topo = Topology("two-islands")
        a = [topo.add_switch() for _ in range(4)]
        b = [topo.add_switch() for _ in range(4)]
        for grp in (a, b):
            for i in range(3):
                topo.add_link(grp[i], grp[i + 1], delay_ps=us(1))
        long_link = topo.add_link(a[3], b[0], delay_ps=us(1000))
        topo.freeze()
        part = cfp_partition(topo, 2)
        assert part.is_cut(topo, long_link)

    def test_baselines_deterministic(self, fattree4):
        assert (balanced_cut(fattree4, 3).assignment
                == balanced_cut(fattree4, 3).assignment)
        assert (cfp_partition(fattree4, 3).assignment
                == cfp_partition(fattree4, 3).assignment)
