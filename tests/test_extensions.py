"""Library extensions: leaf-spine, queue sampling, CSV export."""

import csv
import io

import pytest

from repro.core.engine import DodEngine
from repro.des.simulator import OodSimulator
from repro.errors import TopologyError
from repro.metrics import flows_csv, rtt_csv, window_breakdown_csv
from repro.routing import build_fib
from repro.scenario import make_scenario
from repro.topology import leaf_spine
from repro.traffic import Flow
from repro.units import GBPS


class TestLeafSpine:
    def test_shape(self):
        topo = leaf_spine(4, 2, hosts_per_leaf=8)
        assert topo.num_hosts == 32
        assert len(topo.switches) == 6
        # links: 32 access + 4*2 fabric
        assert topo.num_links == 40

    def test_every_leaf_reaches_every_spine(self):
        topo = leaf_spine(3, 2, hosts_per_leaf=1)
        fib = build_fib(topo)
        hosts = topo.hosts
        path = fib.path(hosts[0], hosts[-1], flow_id=1)
        # host-leaf-spine-leaf-host
        assert len(path) == 5

    def test_ecmp_over_spines(self):
        topo = leaf_spine(2, 4, hosts_per_leaf=1)
        fib = build_fib(topo)
        hosts = topo.hosts
        spines = set()
        for fid in range(32):
            spines.add(fib.path(hosts[0], hosts[1], fid)[2])
        assert len(spines) >= 2

    def test_engines_agree_on_leaf_spine(self):
        from repro.core.engine import run_dons
        from repro.des import run_baseline
        from repro.metrics import TraceLevel
        topo = leaf_spine(2, 2, hosts_per_leaf=4,
                          host_rate_bps=10 * GBPS,
                          fabric_rate_bps=10 * GBPS)
        hosts = topo.hosts
        flows = [Flow(i, hosts[i], hosts[7 - i], 60_000, 0)
                 for i in range(4)]
        sc = make_scenario(topo, flows)
        a = run_baseline(sc, TraceLevel.FULL)
        b = run_dons(sc, TraceLevel.FULL)
        assert a.trace.digest() == b.trace.digest()

    def test_invalid_parameters(self):
        with pytest.raises(TopologyError):
            leaf_spine(0, 2, 2)


class TestQueueSampling:
    def test_samples_identical_across_engines(self, dumbbell_scenario):
        a = OodSimulator(dumbbell_scenario, sample_queues=True)
        a.run()
        b = DodEngine(dumbbell_scenario, sample_queues=True)
        b.run()
        for pa, pb in zip(a.ports, b.ports):
            assert pa.stats.queue_samples == pb.stats.queue_samples

    def test_samples_track_occupancy(self, dumbbell_scenario):
        sim = OodSimulator(dumbbell_scenario, sample_queues=True)
        sim.run()
        bottleneck = [p for p in sim.ports
                      if p.stats.max_queue_bytes > 0]
        assert bottleneck, "nothing queued anywhere?"
        port = max(bottleneck, key=lambda p: p.stats.max_queue_bytes)
        times = [t for t, _q in port.stats.queue_samples]
        assert times == sorted(times)
        assert max(q for _t, q in port.stats.queue_samples) \
            == port.stats.max_queue_bytes

    def test_disabled_by_default(self, dumbbell_scenario):
        sim = OodSimulator(dumbbell_scenario)
        sim.run()
        assert all(not p.stats.queue_samples for p in sim.ports)


class TestCsvExport:
    @pytest.fixture(scope="class")
    def results(self):
        from repro.core.engine import run_dons
        from repro.scenario import make_scenario
        from repro.topology import dumbbell
        topo = dumbbell(2, edge_rate_bps=10 * GBPS)
        flows = [Flow(0, 0, 2, 40_000, 0), Flow(1, 1, 3, 40_000, 0)]
        return run_dons(make_scenario(topo, flows))

    def test_flows_csv(self, results):
        rows = list(csv.DictReader(io.StringIO(flows_csv(results))))
        assert len(rows) == 2
        assert rows[0]["flow_id"] == "0"
        assert float(rows[0]["fct_us"]) > 0

    def test_rtt_csv(self, results):
        rows = list(csv.DictReader(io.StringIO(rtt_csv(results))))
        assert len(rows) == len(results.rtt_samples)
        assert all(float(r["rtt_us"]) > 0 for r in rows)

    def test_window_breakdown_csv(self, results):
        rows = list(csv.DictReader(io.StringIO(window_breakdown_csv(results))))
        assert len(rows) == len(results.window_breakdown)
        assert {"t_us", "ack", "send", "forward", "transmit"} \
            == set(rows[0].keys())

    def test_writes_to_stream(self, results):
        buf = io.StringIO()
        assert flows_csv(results, out=buf) == ""
        assert "flow_id" in buf.getvalue()
