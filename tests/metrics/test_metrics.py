"""Metrics: trace recorder, results containers, Wasserstein distances."""

import numpy as np
import pytest

from repro.metrics import (
    EventCounts, FlowResult, SimResults, TraceKind, TraceLevel,
    TraceRecorder, load_vector_distance, normalized_w1, wasserstein_1d,
)


class TestTraceRecorder:
    def test_levels_gate_recording(self):
        none = TraceRecorder(TraceLevel.NONE)
        none.deq(1, 2, 3, 0, 4)
        assert len(none) == 0

        ports = TraceRecorder(TraceLevel.PORTS)
        ports.deq(1, 2, 3, 0, 4)
        ports.enq(1, 2, 3, 0, 4, 0)  # FULL-only
        assert len(ports) == 1

        full = TraceRecorder(TraceLevel.FULL)
        full.deq(1, 2, 3, 0, 4)
        full.enq(1, 2, 3, 0, 4, 1)
        full.deliver(2, 9, 3, 0, 4)
        assert len(full) == 3

    def test_sorted_entries_and_digest_stable(self):
        a = TraceRecorder(TraceLevel.FULL)
        b = TraceRecorder(TraceLevel.FULL)
        a.deq(5, 1, 1, 0, 1)
        a.deq(3, 1, 1, 0, 0)
        b.deq(3, 1, 1, 0, 0)
        b.deq(5, 1, 1, 0, 1)
        assert a.sorted_entries() == b.sorted_entries()
        assert a.digest() == b.digest()

    def test_digest_differs_on_content(self):
        a = TraceRecorder(TraceLevel.FULL)
        b = TraceRecorder(TraceLevel.FULL)
        a.deq(3, 1, 1, 0, 0)
        b.deq(3, 1, 1, 0, 1)
        assert a.digest() != b.digest()

    def test_drop_and_flow_done_kinds(self):
        t = TraceRecorder(TraceLevel.PORTS)
        t.drop(1, 2, 3, 0, 4)
        t.flow_done(9, 7, 3)
        kinds = [e[1] for e in t.entries]
        assert kinds == [TraceKind.DROP, TraceKind.FLOW_DONE]


class TestResults:
    def test_flow_result_fct(self):
        fr = FlowResult(0, 100, 400, 1000)
        assert fr.fct_ps == 300
        assert FlowResult(0, 100, None, 1000).fct_ps is None

    def test_event_counts_add(self):
        a = EventCounts(1, 2, 3, 4)
        a.add(EventCounts(10, 20, 30, 40))
        assert (a.send, a.forward, a.transmit, a.ack) == (11, 22, 33, 44)
        assert a.total == 110

    def test_summaries(self):
        res = SimResults("e", "s", 10)
        res.flows[1] = FlowResult(1, 0, 500, 10)
        res.flows[0] = FlowResult(0, 0, 200, 10)
        res.flows[2] = FlowResult(2, 0, None, 10)
        assert res.fcts_ps() == [200, 500]  # flow-id order, finished only
        assert res.completed() == 2
        assert res.mean_fct_s() == pytest.approx(350e-12)

    def test_empty_mean_fct(self):
        assert SimResults("e", "s", 0).mean_fct_s() is None


class TestWasserstein:
    def test_identical_distributions_zero(self):
        xs = [1.0, 2.0, 5.0, 9.0]
        assert wasserstein_1d(xs, xs) == 0.0

    def test_shift_equals_offset(self):
        xs = np.arange(100.0)
        assert wasserstein_1d(xs, xs + 3.5) == pytest.approx(3.5)

    def test_matches_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        rng = np.random.default_rng(0)
        a = rng.exponential(2.0, 500)
        b = rng.normal(5.0, 1.0, 300)
        assert wasserstein_1d(a, b) == pytest.approx(
            scipy_stats.wasserstein_distance(a, b), rel=1e-9)

    def test_symmetry(self):
        a = [1.0, 4.0, 4.0]
        b = [2.0, 2.0, 8.0, 9.0]
        assert wasserstein_1d(a, b) == pytest.approx(wasserstein_1d(b, a))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            wasserstein_1d([], [1.0])

    def test_normalized_w1(self):
        ref = [10.0] * 50
        assert normalized_w1(ref, ref) == 0.0
        assert normalized_w1([20.0] * 50, ref) == pytest.approx(1.0)

    def test_load_vector_distance(self):
        a = np.array([1.0, 0.0, 0.0, 0.0])
        b = np.array([0.0, 0.0, 0.0, 1.0])
        assert load_vector_distance(a, a) == 0.0
        # full mass relocated across the whole vector: maximal distance
        assert load_vector_distance(a, b) == pytest.approx(0.75)
        # relocation by one slot is a smaller change
        c = np.array([0.0, 1.0, 0.0, 0.0])
        assert load_vector_distance(a, c) < load_vector_distance(a, b)
        with pytest.raises(ValueError):
            load_vector_distance([1.0], [1.0, 2.0])

    def test_load_vector_scale_invariant(self):
        a = np.array([1.0, 2.0, 3.0])
        assert load_vector_distance(a, 10 * a) == pytest.approx(0.0)
