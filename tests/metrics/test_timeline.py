"""Telemetry exporters: Chrome-trace timelines, stats dumps, manifests."""

import json

import pytest

from repro.core.engine import DodEngine
from repro.core.instrument import InstrumentationBus
from repro.errors import ReproError
from repro.metrics.timeline import (
    MANIFEST_FORMAT,
    TELEMETRY_SCHEMA_VERSION,
    chrome_trace_events,
    run_manifest,
    stats_csv,
    stats_dict,
    validate_chrome_trace,
    validate_timeline_file,
    write_manifest,
    write_stats,
    write_timeline,
)
from repro.scenario import make_scenario
from repro.topology import dumbbell
from repro.traffic import fixed_flows


def _bus_with(*spans):
    bus = InstrumentationBus()
    bus.enable_telemetry()
    for span in spans:
        bus.span_add(*span)
    return bus


class TestChromeTraceEvents:
    def test_empty_bus_yields_no_events(self):
        assert chrome_trace_events(InstrumentationBus()) == []

    def test_nesting_emits_matched_pairs(self):
        bus = _bus_with(
            ("run", 0.0, 1.0, "run"),
            ("window", 0.1, 0.4, "window", {"index": 0}),
            ("ack", 0.1, 0.2, "system"),
        )
        events = validate_chrome_trace(chrome_trace_events(bus))
        names = [(e["ph"], e["name"]) for e in events if e["ph"] != "M"]
        assert names == [("B", "run"), ("B", "window"), ("B", "ack"),
                         ("E", "ack"), ("E", "window"), ("E", "run")]

    def test_child_overhanging_parent_is_clamped(self):
        """Clock jitter can make a child end after its parent; the
        exporter clamps so validation still sees proper nesting."""
        bus = _bus_with(
            ("window", 0.0, 1.0, "window"),
            ("ack", 0.5, 1.5, "system"),  # overhangs
        )
        events = validate_chrome_trace(chrome_trace_events(bus))
        ends = {e["name"]: e["ts"] for e in events if e["ph"] == "E"}
        assert ends["ack"] <= ends["window"]

    def test_agent_prefix_selects_process_track(self):
        bus = _bus_with(
            ("a0:window", 0.0, 1.0, "window"),
            ("a1:window", 0.0, 1.0, "window"),
            ("a1:barrier-wait", 0.5, 1.0, "cluster"),
            ("agree", 0.0, 0.1, "cluster"),
        )
        events = chrome_trace_events(bus)
        by_name = {e["name"]: e for e in events if e["ph"] == "B"}
        assert by_name["window"]["pid"] in (1, 2)
        # coordinator-recorded per-agent slices go on thread 1 so they
        # cannot break the agent's own span nesting on thread 0
        assert by_name["barrier-wait"]["pid"] == 2
        assert by_name["barrier-wait"]["tid"] == 1
        assert by_name["agree"]["pid"] == 0
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["args"]["name"] for e in meta} == {
            "run", "agent 0", "agent 1"}

    def test_timestamps_rebased_to_zero_microseconds(self):
        bus = _bus_with(("window", 5.0, 5.001, "window"))
        events = [e for e in chrome_trace_events(bus) if e["ph"] != "M"]
        assert events[0]["ts"] == 0
        assert events[1]["ts"] == pytest.approx(1000, abs=1)


class TestValidation:
    def test_rejects_missing_trace_events(self):
        with pytest.raises(ReproError, match="traceEvents"):
            validate_chrome_trace({"foo": 1})

    def test_rejects_missing_keys(self):
        with pytest.raises(ReproError, match="lacks"):
            validate_chrome_trace([{"ph": "B", "ts": 0, "pid": 0}])

    def test_rejects_non_monotone_ts(self):
        events = [
            {"ph": "B", "name": "a", "ts": 5, "pid": 0, "tid": 0},
            {"ph": "E", "name": "a", "ts": 1, "pid": 0, "tid": 0},
        ]
        with pytest.raises(ReproError, match="monotone"):
            validate_chrome_trace(events)

    def test_rejects_unmatched_end(self):
        events = [{"ph": "E", "name": "a", "ts": 0, "pid": 0, "tid": 0}]
        with pytest.raises(ReproError, match="unmatched"):
            validate_chrome_trace(events)

    def test_rejects_unclosed_begin(self):
        events = [{"ph": "B", "name": "a", "ts": 0, "pid": 0, "tid": 0}]
        with pytest.raises(ReproError, match="unclosed"):
            validate_chrome_trace(events)

    def test_rejects_crossed_pairs(self):
        events = [
            {"ph": "B", "name": "a", "ts": 0, "pid": 0, "tid": 0},
            {"ph": "B", "name": "b", "ts": 1, "pid": 0, "tid": 0},
            {"ph": "E", "name": "a", "ts": 2, "pid": 0, "tid": 0},
        ]
        with pytest.raises(ReproError, match="closes"):
            validate_chrome_trace(events)


@pytest.fixture(scope="module")
def scenario():
    topo = dumbbell(2)
    flows = fixed_flows(topo.hosts, n_flows=4, size_bytes=20_000)
    return make_scenario(topo, flows)


@pytest.fixture(scope="module")
def telemetered_run(scenario):
    engine = DodEngine(scenario, telemetry=True)
    engine.run()
    return engine


class TestSingleEngineExport:
    def test_timeline_file_roundtrip(self, telemetered_run, tmp_path):
        path = tmp_path / "timeline.json"
        write_timeline(telemetered_run.bus, str(path),
                       manifest={"seed": 7, "backend": "python"})
        events = validate_timeline_file(str(path))
        cats = {e.get("cat") for e in events if e["ph"] == "B"}
        assert {"run", "window", "system"} <= cats
        data = json.loads(path.read_text())
        assert data["otherData"]["schema_version"] == TELEMETRY_SCHEMA_VERSION
        manifest = json.loads(
            (tmp_path / "timeline.json.manifest.json").read_text())
        assert manifest["format"] == MANIFEST_FORMAT
        assert manifest["seed"] == 7
        assert manifest["backend"] == "python"

    def test_stats_dict_has_metric_catalog(self, telemetered_run):
        report = stats_dict(telemetered_run.bus)
        assert report["schema_version"] == TELEMETRY_SCHEMA_VERSION
        hists = report["metrics"]["histograms"]
        assert "port.queue_depth_bytes" in hists
        assert "flow.completion_time_us" in hists
        assert hists["flow.completion_time_us"]["count"] == 4
        assert report["spans"] > 0

    def test_stats_csv_parses(self, telemetered_run):
        rows = stats_csv(telemetered_run.bus).splitlines()
        assert rows[0] == "kind,name,field,value"
        kinds = {line.split(",", 1)[0] for line in rows[1:]}
        assert {"counter", "histogram", "total"} <= kinds

    def test_write_stats_json_and_csv(self, telemetered_run, tmp_path):
        jpath = tmp_path / "stats.json"
        write_stats(telemetered_run.bus, str(jpath), "json",
                    manifest={"command": "test"})
        assert json.loads(jpath.read_text())["schema_version"] \
            == TELEMETRY_SCHEMA_VERSION
        assert (tmp_path / "stats.json.manifest.json").exists()
        cpath = tmp_path / "stats.csv"
        write_stats(telemetered_run.bus, str(cpath), "csv")
        assert cpath.read_text().startswith("kind,name,field,value")
        with pytest.raises(ReproError):
            write_stats(telemetered_run.bus, str(tmp_path / "x"), "xml")


class TestManifest:
    def test_run_manifest_drops_nones(self):
        manifest = run_manifest(seed=3, transport=None)
        assert manifest["seed"] == 3
        assert "transport" not in manifest
        assert manifest["schema_version"] == TELEMETRY_SCHEMA_VERSION

    def test_write_manifest_path_convention(self, tmp_path):
        artifact = tmp_path / "out.json"
        artifact.write_text("{}")
        path = write_manifest(str(artifact), seed=1)
        assert path == str(artifact) + ".manifest.json"


class TestClusterExport:
    """The acceptance scenario: a 2-agent process-transport run exports
    a valid timeline with both agents' tracks and the coordinator's
    barrier-wait slices, and the stats dump feeds refit_cluster_spec."""

    @pytest.fixture(scope="class")
    def cluster_run(self, scenario):
        from repro.cluster import DonsManager
        from repro.partition import ClusterSpec
        mgr = DonsManager(scenario, ClusterSpec.homogeneous(2),
                          transport="process", telemetry=True)
        return mgr.run()

    def test_timeline_has_both_agents_and_barrier_waits(self, cluster_run,
                                                        tmp_path):
        path = tmp_path / "cluster.json"
        write_timeline(cluster_run.bus, str(path))
        events = validate_timeline_file(str(path))
        begins = [e for e in events if e["ph"] == "B"]
        for pid in (1, 2):  # agents 0 and 1
            names = {e["name"] for e in begins if e["pid"] == pid}
            assert {"run", "window", "ack"} <= names, names
        waits = [e for e in begins if e["name"] == "barrier-wait"]
        assert waits
        assert all(e["cat"] == "cluster" and e["tid"] == 1 for e in waits)
        # coordinator track carries the cluster phases
        coord = {e["name"] for e in begins if e["pid"] == 0}
        assert {"agree", "window", "flush"} <= coord

    def test_stats_feed_refit_cluster_spec(self, cluster_run, scenario):
        from repro.partition import ClusterSpec, refit_cluster_spec
        from repro.partition.loadest import estimate_scenario_loads
        report = stats_dict(cluster_run.bus)
        busy = report["agent_busy_s"]
        wait = report["agent_barrier_wait_s"]
        assert len(busy) == len(wait) == 2
        assert all(b > 0 for b in busy)
        refit = refit_cluster_spec(
            ClusterSpec.homogeneous(2), scenario.topology,
            cluster_run.partition, estimate_scenario_loads(scenario),
            busy,  # the exported series is the measured_times shape
        )
        assert len(refit.compute) == 2
        assert all(c > 0 for c in refit.compute)

    def test_cluster_metrics_include_barrier_histogram(self, cluster_run):
        hists = cluster_run.bus.metrics.histograms
        assert "cluster.barrier_wait_ms" in hists
        assert hists["cluster.barrier_wait_ms"].count > 0
        # agent-side samples merged in across the pipe
        assert "port.queue_depth_bytes" in hists


class TestDerivedSections:
    """PR 10 satellite: memo.* and transport.shm_* counters surface as
    derived ``memo`` / ``transport_shm`` stats sections instead of
    staying bus-only."""

    @pytest.fixture(scope="class")
    def memo_scenario(self):
        # The memo cache only arms for UDP-carrying scenarios (see
        # DodEngine._maybe_init_memo); steady periodic UDP is its home
        # regime and guarantees nonzero lookup counters.
        from repro.traffic import Flow, Transport
        from repro.units import GBPS, us
        topo = dumbbell(4, edge_rate_bps=12 * GBPS,
                        bottleneck_rate_bps=100 * GBPS, delay_ps=us(1))
        flows = [Flow(i, i, 4 + i, 200_000, 0, Transport.UDP)
                 for i in range(4)]
        return make_scenario(topo, flows, name="memo-steady")

    def test_memo_section_from_ffwd_run(self, memo_scenario):
        engine = DodEngine(memo_scenario, telemetry=True, ffwd=True)
        engine.run()
        report = stats_dict(engine.bus)
        memo = report["memo"]
        lookups = memo["hit"] + memo["miss"]
        assert lookups > 0
        assert memo["hit_rate"] == pytest.approx(memo["hit"] / lookups)

    def test_sections_absent_without_counters(self, telemetered_run):
        report = stats_dict(telemetered_run.bus)
        assert "memo" not in report
        assert "transport_shm" not in report

    def test_shm_section_from_counters(self):
        from repro.core.instrument import InstrumentationBus
        bus = InstrumentationBus()
        bus.count("transport.shm_frames", 12)
        bus.count("transport.shm_bytes", 4096)
        bus.count("transport.shm_fallbacks", 1)
        report = stats_dict(bus)
        assert report["transport_shm"] == {
            "frames": 12, "bytes": 4096, "fallbacks": 1}

    def test_sections_flatten_to_csv(self, memo_scenario):
        engine = DodEngine(memo_scenario, telemetry=True, ffwd=True)
        engine.run()
        engine.bus.count("transport.shm_frames", 3)
        rows = stats_csv(engine.bus).splitlines()
        kinds = {line.split(",", 1)[0] for line in rows[1:]}
        assert {"memo", "transport_shm"} <= kinds
        memo_fields = {line.split(",")[2] for line in rows[1:]
                       if line.startswith("memo,")}
        assert {"hit", "miss", "hit_rate"} <= memo_fields
