"""Live observability plane: NDJSON schema, OpenMetrics exposition,
HTTP endpoint, and the flight recorder's bounded ring + dump triggers."""

import io
import json
import os
import signal
import urllib.request

import pytest

from repro.core.engine import DodEngine
from repro.core.runner import EngineRunner, chain_hooks
from repro.core.telemetry import Histogram, MetricsRegistry
from repro.errors import ReproError
from repro.metrics.live import (
    LIVE_RECORD_KEYS, LIVE_SCHEMA_VERSION, FlightRecorder, LivePlane,
    MetricsServer, openmetrics_text, validate_openmetrics,
)
from repro.metrics.timeline import validate_timeline_file
from repro.scenario import make_scenario
from repro.topology import dumbbell
from repro.traffic import Transport, fixed_flows


@pytest.fixture(scope="module")
def scenario():
    topo = dumbbell(3)
    flows = fixed_flows(topo.hosts, n_flows=6, size_bytes=40_000,
                        transport=Transport.DCTCP, seed=5)
    return make_scenario(topo, flows)


def _run_live(scenario, stream, telemetry=False, **kwargs):
    engine = DodEngine(scenario, telemetry=telemetry)
    plane = LivePlane(engine, stream=stream, interval_ms=0, **kwargs)
    try:
        EngineRunner(engine, on_step=plane.on_step).run()
    finally:
        plane.close()
    return engine, plane


# --- NDJSON schema ---------------------------------------------------------

def test_ndjson_schema_pinned(scenario):
    """Every progress/final record carries exactly the pinned key set —
    consumers never branch on key presence."""
    buf = io.StringIO()
    engine, plane = _run_live(scenario, buf)
    lines = [json.loads(line) for line in buf.getvalue().splitlines()]
    assert lines, "no records emitted"
    assert plane.records_emitted == len(lines)
    for record in lines:
        assert record["v"] == LIVE_SCHEMA_VERSION
        if record["kind"] in ("progress", "final"):
            assert set(record) == set(LIVE_RECORD_KEYS)
    kinds = [r["kind"] for r in lines]
    assert kinds[-1] == "final" and kinds.count("final") == 1
    final = lines[-1]
    assert final["windows"] > 0
    assert final["events"] == engine.results.events.total
    assert final["events_per_s"] > 0
    # Serial run: no agents, no memo, no shm — nulls/zeros, not absences.
    assert final["agents_busy_s"] is None
    assert final["memo_hit_rate"] is None
    assert final["shm_frames"] == 0


def test_ndjson_monotone_progress(scenario):
    buf = io.StringIO()
    _run_live(scenario, buf)
    records = [json.loads(line) for line in buf.getvalue().splitlines()
               if json.loads(line)["kind"] in ("progress", "final")]
    for a, b in zip(records, records[1:]):
        assert b["windows"] >= a["windows"]
        assert b["sim_ps"] >= a["sim_ps"]
        assert b["events"] >= a["events"]
        assert b["wall_s"] >= a["wall_s"]


def test_throttle_limits_record_rate(scenario):
    """A huge interval means only the forced final record is emitted."""
    buf = io.StringIO()
    engine = DodEngine(scenario)
    plane = LivePlane(engine, stream=buf, interval_ms=3_600_000)
    plane._last = plane._t0  # arm the throttle as if one sample just fired
    try:
        EngineRunner(engine, on_step=plane.on_step).run()
    finally:
        plane.close()
    lines = [json.loads(line) for line in buf.getvalue().splitlines()]
    assert [r["kind"] for r in lines] == ["final"]


def test_progress_api(scenario):
    engine = DodEngine(scenario)
    p0 = engine.progress()
    assert p0["windows"] == 0 and p0["sim_ps"] == 0 and p0["events"] == 0
    engine.run()
    p1 = engine.progress()
    assert p1["windows"] > 0
    assert p1["events"] == engine.results.events.total
    assert p1["sim_ps"] > 0


def test_chain_hooks():
    seen = []
    chained = chain_hooks(None, seen.append, None,
                          lambda s: seen.append(-s))
    chained(3)
    assert seen == [3, -3]
    assert chain_hooks(None, None) is None
    one = seen.append
    assert chain_hooks(None, one) is one


# --- OpenMetrics exposition ------------------------------------------------

def _sample_registry():
    registry = MetricsRegistry()
    registry.gauge("a0:busy_s", 1.5)
    registry.gauge("a1:busy_s", 2.5)
    registry.gauge("cluster.span", 4.0)
    registry.count("pool.tasks", 7)
    hist = registry.histogram("cluster.barrier_wait_ms", (1, 5, 10))
    for value in (0.5, 3, 7, 20):
        hist.record(value)
    return registry


def test_openmetrics_text_valid():
    record = {"v": 1, "kind": "progress", "wall_s": 1.0, "windows": 5,
              "sim_ps": 1000, "events": 42, "events_per_s": 42.0,
              "done": 0.5, "memo_hit_rate": None}
    text = openmetrics_text(record, {"windows": 5, "memo.hit": 3},
                            _sample_registry().snapshot())
    samples = validate_openmetrics(text)
    assert text.endswith("# EOF\n")
    by_name = {(name, labels): value for name, labels, value in samples}
    assert by_name[("repro_windows_done", "")] == 5
    assert by_name[("repro_events_committed", "")] == 42
    # memo_hit_rate is None -> gauge omitted entirely.
    assert not any(n == "repro_memo_hit_rate" for n, _l, _v in samples)
    # Counters carry the mandatory _total suffix.
    assert by_name[("repro_memo_hit_total", "")] == 3
    assert by_name[("repro_pool_tasks_total", "")] == 7
    # Agent gauges share one family with agent="<i>" labels.
    assert by_name[("repro_agent_busy_s", 'agent="0"')] == 1.5
    assert by_name[("repro_agent_busy_s", 'agent="1"')] == 2.5
    # Histogram buckets are cumulative and +Inf == _count.
    buckets = [(labels, value) for name, labels, value in samples
               if name == "repro_cluster_barrier_wait_ms_bucket"]
    values = [value for _l, value in buckets]
    assert values == sorted(values)
    assert buckets[-1] == ('le="+Inf"', 4.0)
    assert by_name[("repro_cluster_barrier_wait_ms_count", "")] == 4


def test_validate_openmetrics_rejects_bad_payloads():
    with pytest.raises(ReproError, match="EOF"):
        validate_openmetrics("repro_x 1\n")
    with pytest.raises(ReproError, match="no TYPE"):
        validate_openmetrics("repro_x 1\n# EOF\n")
    with pytest.raises(ReproError, match="_total"):
        validate_openmetrics(
            "# TYPE repro_x counter\nrepro_x 1\n# EOF\n")
    with pytest.raises(ReproError, match="cumulative"):
        validate_openmetrics(
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            'repro_h_bucket{le="+Inf"} 3\n'
            "# EOF\n")
    with pytest.raises(ReproError, match="unparsable"):
        validate_openmetrics("# TYPE repro_x gauge\nrepro_x one\n# EOF\n")


def test_histogram_cumulative():
    hist = Histogram((1, 5, 10))
    for value in (0.5, 3, 7, 20):
        hist.record(value)
    assert hist.cumulative() == [(1.0, 1), (5.0, 2), (10.0, 3),
                                 (float("inf"), 4)]


# --- HTTP endpoint ---------------------------------------------------------

def test_metrics_server_scrape(scenario):
    buf = io.StringIO()
    engine = DodEngine(scenario)
    plane = LivePlane(engine, stream=buf, interval_ms=0, metrics_port=0)
    assert plane.server is not None and plane.server.port > 0
    try:
        EngineRunner(engine, on_step=plane.on_step).run()
        body = urllib.request.urlopen(plane.server.url, timeout=5).read()
        text = body.decode("utf-8")
    finally:
        plane.close()
    samples = dict(((n, l), v) for n, l, v in validate_openmetrics(text))
    assert samples[("repro_windows_done", "")] > 0
    assert samples[("repro_events_committed", "")] > 0


def test_metrics_server_env_port(scenario, monkeypatch):
    monkeypatch.setenv("REPRO_METRICS_PORT", "0")
    engine = DodEngine(scenario)
    plane = LivePlane(engine, stream=io.StringIO(), interval_ms=0)
    try:
        assert plane.server is not None
        # Before any sample the endpoint serves an empty, valid payload.
        text = urllib.request.urlopen(plane.server.url, timeout=5).read()
        validate_openmetrics(text.decode("utf-8"))
    finally:
        plane.close(final=False)


def test_metrics_server_404():
    server = MetricsServer(port=0)
    try:
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(
                f"http://127.0.0.1:{server.port}/nope", timeout=5)
    finally:
        server.close()


# --- flight recorder -------------------------------------------------------

def test_flight_recorder_bounded_ring(scenario, tmp_path):
    engine = DodEngine(scenario, telemetry=True)
    recorder = FlightRecorder(engine.bus, max_windows=8)
    runner = EngineRunner(engine, on_step=lambda _s: recorder.poll())
    runner.run()
    recorder.poll()
    assert recorder.windows <= 8
    total_windows = sum(1 for s in engine.bus.spans if s[2] == "window")
    assert total_windows > 8, "scenario too small to exercise eviction"
    path = tmp_path / "flight.json"
    assert recorder.dump(str(path)) == str(path)
    events = validate_timeline_file(str(path))
    dumped_windows = sum(1 for e in events
                         if e.get("ph") == "B" and e["name"] == "window")
    assert 0 < dumped_windows <= 8
    data = json.loads(path.read_text())
    assert data["otherData"]["flight_recorder"]["max_windows"] == 8


def test_flight_recorder_empty_without_telemetry(scenario, tmp_path):
    engine = DodEngine(scenario)  # telemetry off: no spans
    engine.run()
    recorder = FlightRecorder(engine.bus)
    assert recorder.dump(str(tmp_path / "flight.json")) is None


def test_flight_dump_on_crash(scenario, tmp_path):
    flight = tmp_path / "crash.flight.json"
    engine = DodEngine(scenario, telemetry=True)
    plane = LivePlane(engine, stream=io.StringIO(), interval_ms=0,
                      flight_path=str(flight))
    assert plane.recorder is not None, "telemetry on must arm the recorder"

    def boom(steps):
        plane.on_step(steps)
        if steps >= 20:
            raise RuntimeError("injected crash")

    with pytest.raises(RuntimeError, match="injected crash"):
        with plane:
            EngineRunner(engine, on_step=boom).run()
    validate_timeline_file(str(flight))


@pytest.mark.skipif(not hasattr(signal, "SIGUSR1"),
                    reason="platform has no SIGUSR1")
def test_flight_dump_on_sigusr1(scenario, tmp_path):
    flight = tmp_path / "usr1.flight.json"
    buf = io.StringIO()
    engine = DodEngine(scenario, telemetry=True)
    plane = LivePlane(engine, stream=buf, interval_ms=0,
                      flight_path=str(flight))
    fired = {"done": False}

    def kick(steps):
        plane.on_step(steps)
        if steps >= 20 and not fired["done"]:
            fired["done"] = True
            os.kill(os.getpid(), signal.SIGUSR1)

    try:
        EngineRunner(engine, on_step=kick).run()
    finally:
        plane.close()
    validate_timeline_file(str(flight))
    kinds = [json.loads(line)["kind"] for line in buf.getvalue().splitlines()]
    assert "flight" in kinds
    # The prior handler is restored at close.
    assert signal.getsignal(signal.SIGUSR1) is not plane._on_sigusr1
