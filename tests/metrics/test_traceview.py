"""Trace analysis utilities."""

import pytest

from repro.core.engine import run_dons
from repro.metrics import TraceLevel
from repro.metrics.traceview import (
    drops_by_port, flow_timeline, hops, marked_fraction, packet_journey,
    per_hop_latency, queueing_delays,
)
from repro.scenario import make_scenario
from repro.topology import dumbbell
from repro.traffic import Flow
from repro.units import GBPS, serialization_time_ps, us


@pytest.fixture(scope="module")
def run():
    from repro.protocols import AqmConfig, AqmKind
    topo = dumbbell(4, edge_rate_bps=10 * GBPS,
                    bottleneck_rate_bps=2 * GBPS, delay_ps=us(1))
    flows = [Flow(i, i, 4 + i, 60_000, 0) for i in range(4)]
    sc = make_scenario(
        topo, flows, buffer_bytes=25_000,
        aqm=AqmConfig(kind=AqmKind.ECN_THRESHOLD, ecn_threshold_bytes=8_000),
    )
    return sc, run_dons(sc, TraceLevel.FULL)


class TestPacketJourney:
    def test_journey_is_chronological_and_complete(self, run):
        _sc, res = run
        journey = packet_journey(res.trace, flow=0, seq=0)
        times = [e[0] for e in journey]
        assert times == sorted(times)
        # segment 0: enq+deq at 3 ports (host NIC, swL, swR) + delivery
        assert len(journey) >= 7

    def test_hops_pair_up(self, run):
        _sc, res = run
        hop_list = hops(res.trace, flow=0, seq=0)
        assert len(hop_list) == 3
        for hop in hop_list:
            assert hop.deq_ps >= hop.enq_ps
            assert hop.queueing_ps >= 0

    def test_per_hop_latency_is_ser_plus_delay(self, run):
        sc, res = run
        lats = per_hop_latency(res.trace, flow=0, seq=0)
        assert len(lats) == 2
        # hop from host NIC (10G) into swL: 1460+60 wire bytes + 1 us
        first_iface, lat = lats[0]
        ser = serialization_time_ps(1500, 10 * GBPS)
        assert lat == ser + us(1)


class TestAggregations:
    def test_queueing_delays_concentrate_at_bottleneck(self, run):
        sc, res = run
        delays = queueing_delays(res.trace)
        bottleneck_iface = sc.topology.iface_id(8, 4)  # swL port to swR
        assert bottleneck_iface in delays
        worst = max(max(v) for v in delays.values())
        assert max(delays[bottleneck_iface]) == worst

    def test_drops_by_port(self, run):
        _sc, res = run
        drops = drops_by_port(res.trace)
        assert sum(drops.values()) == res.drops

    def test_flow_timeline(self, run):
        _sc, res = run
        tl = flow_timeline(res.trace, flow=0)
        assert tl["first_event_ps"] <= tl["first_data_deq_ps"]
        assert tl["complete_ps"] == res.flows[0].complete_ps
        assert flow_timeline(res.trace, flow=999) == {}

    def test_marked_fraction(self, run):
        _sc, res = run
        frac = marked_fraction(res.trace)
        assert 0.0 < frac < 1.0  # DCTCP marking active at the bottleneck
        assert marked_fraction(res.trace, iface_id=10**6) == 0.0
