"""Cost and CPU models: formula behaviour and calibration anchors."""

import pytest

from repro.machine import (
    MACBOOK_M1, XEON_SERVER, apa_time_s, cluster_time_s, dons_time_s,
    dons_system_timeline, dons_utilization_percent, eq1_machine_time_s,
    format_duration, multiprocess_time_s, omnet_cluster_time_s,
    ood_utilization_percent, per_event_ns, sequential_time_s,
)
from repro.machine.cost import (
    cost_cmr, dons_time_uniform, multiprocess_paper_scale_s,
)


class TestPerEvent:
    def test_cmr_raises_cost(self):
        assert per_event_ns(5.0) > per_event_ns(0.1)

    def test_faster_core_cheaper(self):
        assert per_event_ns(1.0, MACBOOK_M1) < per_event_ns(1.0, XEON_SERVER)

    def test_cost_cmr_clamps(self):
        assert cost_cmr(12.0) == 6.0
        assert cost_cmr(3.0) == 3.0
        assert cost_cmr(0.5, is_dod=True) == 0.15
        assert cost_cmr(0.05, is_dod=True) == 0.05


class TestSequentialAndParallel:
    def test_sequential_linear_in_events(self):
        assert sequential_time_s(2_000_000, 4.5) == pytest.approx(
            2 * sequential_time_s(1_000_000, 4.5))

    def test_multiprocess_dominated_by_slowest_lp(self):
        balanced = multiprocess_time_s([500, 500], 4.5, 0, 0)
        skewed = multiprocess_time_s([900, 100], 4.5, 0, 0)
        assert skewed > balanced

    def test_sync_overhead_additive(self):
        base = multiprocess_time_s([1000], 4.5, 0, 0)
        sync = multiprocess_time_s([1000], 4.5, 100, 1000)
        assert sync > base

    def test_paper_scale_bad_partition_slower_than_serial(self):
        # Few events per window + per-window sync -> parallel loses.
        events, windows = 10_000_000, 1_000_000
        t1 = sequential_time_s(events, 4.5)
        t2 = multiprocess_paper_scale_s(events, windows, 4.5, 2,
                                        max_share=0.7, burstiness=1.5)
        assert t2 > t1

    def test_paper_scale_huge_windows_eventually_help(self):
        events, windows = 100_000_000_000, 1_000_000
        t1 = sequential_time_s(events, 4.5)
        t32 = multiprocess_paper_scale_s(events, windows, 4.5, 32,
                                         max_share=1 / 32, burstiness=1.2)
        assert t32 < t1


class TestDonsTime:
    WB = [(i * 1000, 50, 100, 400, 450) for i in range(100)]

    def test_more_cores_faster_until_bandwidth_cap(self):
        t1 = dons_time_s(self.WB, 0.1, workers=1).total_s
        t8 = dons_time_s(self.WB, 0.1, workers=8).total_s
        t32 = dons_time_s(self.WB, 0.1, workers=32).total_s
        assert t8 < t1
        # beyond the DRAM stream cap extra cores stop helping
        assert t32 == pytest.approx(
            dons_time_s(self.WB, 0.1, workers=10).total_s)

    def test_utilization_bounded(self):
        util = dons_utilization_percent(self.WB, 0.1, XEON_SERVER, 32)
        assert 0 < util <= 3200

    def test_uniform_projection_consistent_with_breakdown(self):
        events = sum(sum(w[1:5]) for w in self.WB)
        shares = [sum(w[i] for w in self.WB) for i in range(1, 5)]
        direct = dons_time_s(self.WB, 0.1, workers=8).total_s
        uniform = dons_time_uniform(events, len(self.WB), shares, 0.1,
                                    workers=8).total_s
        assert uniform == pytest.approx(direct, rel=0.2)

    def test_timeline_rows_per_window(self):
        tl = dons_system_timeline(self.WB[:5], 0.1, XEON_SERVER, 8)
        assert len(tl) == 5
        assert all(set(r) == {"t_ps", "ack", "send", "forward", "transmit"}
                   for r in tl)


class TestClusterAndApa:
    def test_eq1_additive_terms(self):
        base = eq1_machine_time_s(10**9, 0)
        comms = eq1_machine_time_s(10**9, 10**9)
        assert comms > base

    def test_cluster_max_over_machines(self):
        fast = cluster_time_s([10**9] * 4, [0] * 4, windows=1000)
        skew = cluster_time_s([4 * 10**9, 1, 1, 1], [0] * 4, windows=1000)
        assert skew > fast

    def test_omnet_slower_than_dons_cluster(self):
        ev, eg = [10**10] * 8, [10**6] * 8
        assert (omnet_cluster_time_s(ev, eg, 10**6)
                > cluster_time_s(ev, eg, 10**6))

    def test_apa_scales_with_gpus(self):
        assert apa_time_s(10**9, 8) < apa_time_s(10**9, 4)
        with pytest.raises(ValueError):
            apa_time_s(10, 0)

    def test_ood_utilization(self):
        assert ood_utilization_percent(2, [100, 100]) == pytest.approx(200.0)
        assert ood_utilization_percent(2, [200, 0]) == pytest.approx(100.0)


class TestFormatting:
    @pytest.mark.parametrize("seconds,expected", [
        (45, "45s"), (125, "2m 5s"), (3 * 3600 + 90, "3h 1m"),
        (2 * 86400 + 3 * 3600 + 60, "2d 3h 1m"),
    ])
    def test_format_duration(self, seconds, expected):
        assert format_duration(seconds) == expected
