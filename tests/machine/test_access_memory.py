"""Access models and the memory model."""

import pytest

from repro.core.engine import DodEngine
from repro.des.simulator import OodSimulator
from repro.machine import (
    CacheConfig, DodAccessModel, OodAccessModel, StructuralCounts,
    dons_memory_bytes, max_fattree, memory_by_simulator, ns3_memory_bytes,
    omnet_memory_bytes, ood_state_bytes,
)
from repro.machine.access import OP_FORWARD, OP_HOST_RX, OP_SEND, OP_SERVICE
from repro.units import GIB, MIB


class TestAccessModels:
    def test_ood_records_and_frees(self):
        m = OodAccessModel(10, 20, 4)
        uid = (3 << 25) | 5
        m(OP_SEND, 0, uid)
        n1 = len(m.addresses)
        m(OP_FORWARD, 4, uid)
        m(OP_SERVICE, 7, uid)
        m(OP_HOST_RX, 1, uid)
        assert len(m.addresses) > n1
        # the freed packet slot is reused by the next allocation
        m(OP_SEND, 0, (3 << 25) | 6)
        assert m._free == []

    def test_ood_cap_respected(self):
        m = OodAccessModel(10, 20, 4, max_addresses=50)
        for seq in range(100):
            m(OP_SEND, 0, seq)
        assert m.saturated
        assert len(m.addresses) <= 60  # cap plus one op's worth

    def test_dod_buffer_resets_each_window(self):
        m = DodAccessModel(10, 20, 4, 8)
        m(OP_FORWARD, 4, 1)
        first = m._buffer_cursor
        m(9, 0, 0)  # OP_WINDOW
        assert m._buffer_cursor < first

    def test_engine_hooks_fire(self, fattree4_scenario):
        topo = fattree4_scenario.topology
        ood = OodAccessModel(topo.num_nodes, topo.num_interfaces,
                             topo.num_hosts)
        OodSimulator(fattree4_scenario, op_hook=ood).run()
        eng = DodEngine(fattree4_scenario)
        eng.bus.subscribe_ops(dod := DodAccessModel(
            topo.num_nodes, topo.num_interfaces,
            topo.num_hosts, len(fattree4_scenario.flows)))
        eng.run()
        assert len(ood.addresses) > 1000
        assert len(dod.addresses) > 1000

    def test_layout_gap_emerges(self, fattree4_scenario):
        """The architectural claim: same ops, different layouts, a
        measurable miss-rate gap."""
        topo = fattree4_scenario.topology
        ood = OodAccessModel(topo.num_nodes, topo.num_interfaces,
                             topo.num_hosts)
        OodSimulator(fattree4_scenario, op_hook=ood).run()
        eng = DodEngine(fattree4_scenario)
        eng.bus.subscribe_ops(dod := DodAccessModel(
            topo.num_nodes, topo.num_interfaces,
            topo.num_hosts, len(fattree4_scenario.flows)))
        eng.run()
        cfg = CacheConfig(size_bytes=8 * MIB)
        assert (ood.measure(cfg).miss_rate
                > 5 * dod.measure(cfg).miss_rate)


class TestMemoryModel:
    def test_ns3_linear_in_processes(self):
        c = StructuralCounts.from_fattree_k(8)
        assert ns3_memory_bytes(c, 4) == 4 * ns3_memory_bytes(c, 1)

    def test_omnet_flat_in_processes(self):
        c = StructuralCounts.from_fattree_k(8)
        one, many = omnet_memory_bytes(c, 1), omnet_memory_bytes(c, 32)
        assert many < 1.5 * one

    def test_dons_far_smaller(self):
        c = StructuralCounts.from_fattree_k(16)
        assert dons_memory_bytes(c) < ood_state_bytes(c) / 2

    def test_paper_anchors(self):
        c16 = StructuralCounts.from_fattree_k(16)
        gb = ns3_memory_bytes(c16, 32) / GIB
        assert 100 < gb < 170  # paper: 132.5 GB
        c32 = StructuralCounts.from_fattree_k(32)
        assert 8 < dons_memory_bytes(c32) / GIB < 20  # paper: 12.6 GB

    def test_counts_from_topology(self, fattree4):
        c = StructuralCounts.from_topology(fattree4)
        ck = StructuralCounts.from_fattree_k(4)
        assert c == ck

    def test_max_fattree_limits(self):
        assert max_fattree(128 * GIB, "ns-3") == 32
        assert max_fattree(128 * GIB, "omnet++") == 32
        assert max_fattree(128 * GIB, "dons") >= 48
        assert max_fattree(1 * GIB, "dons") < max_fattree(128 * GIB, "dons")
        with pytest.raises(ValueError):
            max_fattree(1 * GIB, "quantum")

    def test_memory_by_simulator_keys(self):
        c = StructuralCounts.from_fattree_k(4)
        table = memory_by_simulator(c, 2)
        assert set(table) == {"ns-3", "omnet++", "dons"}
