"""Cache simulator: LRU sets, prefetcher, measurement semantics."""

import pytest

from repro.errors import ConfigError
from repro.machine import CacheConfig, CacheSim, measure_miss_rate


def tiny_cache(**kw):
    defaults = dict(size_bytes=4096, line_bytes=64, ways=2,
                    prefetch_degree=0)
    defaults.update(kw)
    return CacheSim(CacheConfig(**defaults))


class TestBasics:
    def test_cold_miss_then_hit(self):
        c = tiny_cache()
        assert not c.access(0)
        assert c.access(0)
        assert c.access(63)      # same line
        assert not c.access(64)  # next line

    def test_lru_eviction_within_set(self):
        c = tiny_cache()  # 32 sets, 2 ways; lines mapping to set 0: 0, 32, 64...
        set_stride = 32 * 64
        c.access(0)
        c.access(set_stride)
        c.access(2 * set_stride)  # evicts line 0
        assert not c.access(0)

    def test_lru_refresh_on_hit(self):
        c = tiny_cache()
        set_stride = 32 * 64
        c.access(0)
        c.access(set_stride)
        c.access(0)                # refresh 0
        c.access(2 * set_stride)   # evicts set_stride, not 0
        assert c.access(0)
        assert not c.access(set_stride)

    def test_stats_counts(self):
        c = tiny_cache()
        for addr in (0, 0, 64, 0):
            c.access(addr)
        assert c.stats.accesses == 4
        assert c.stats.misses == 2
        assert c.stats.miss_rate == 0.5
        assert c.stats.miss_rate_percent == 50.0

    def test_invalid_geometry(self):
        # 4096 B / 64 B = 64 lines, not divisible into 3 ways
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=4096, line_bytes=64, ways=3)


class TestPrefetcher:
    def test_sequential_stream_mostly_hits(self):
        cfg = CacheConfig(size_bytes=64 * 1024, prefetch_degree=4)
        addrs = list(range(0, 64 * 200, 8))  # ascending byte stream
        stats = measure_miss_rate(addrs, cfg)
        assert stats.miss_rate < 0.02
        assert stats.prefetched_hits > 100

    def test_random_stream_defeats_prefetch(self):
        from repro.rng import make_rng
        cfg = CacheConfig(size_bytes=64 * 1024, prefetch_degree=4)
        rng = make_rng(1)
        addrs = rng.integers(0, 1 << 28, size=4000) * 64
        stats = measure_miss_rate(addrs, cfg)
        assert stats.miss_rate > 0.9

    def test_prefetch_disabled_sequential_misses_per_line(self):
        cfg = CacheConfig(size_bytes=64 * 1024, prefetch_degree=0)
        addrs = list(range(0, 64 * 200, 8))  # 8 accesses per line
        stats = measure_miss_rate(addrs, cfg)
        assert stats.miss_rate == pytest.approx(1 / 8, rel=0.1)


class TestWarmup:
    def test_warmup_discards_cold_misses(self):
        cfg = CacheConfig(size_bytes=1 << 20, prefetch_degree=0)
        working_set = [i * 64 for i in range(100)]
        addrs = working_set * 50
        cold = measure_miss_rate(addrs, cfg, warmup=0.0)
        warm = measure_miss_rate(addrs, cfg, warmup=0.5)
        assert warm.miss_rate < cold.miss_rate
        assert warm.misses == 0  # resident after the first pass
