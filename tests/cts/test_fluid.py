"""Fluid (CTS) simulator: max-min allocation and flow dynamics."""

import pytest

from repro.cts import FluidSimulator, run_fluid
from repro.cts.fluid import _ActiveFlow, max_min_rates
from repro.scenario import make_scenario
from repro.topology import dumbbell
from repro.traffic import Flow, Transport
from repro.units import GBPS, PS_PER_S, us


def _af(flow_id, links, bits=8e6):
    f = Flow(flow_id, 0, 1, 10, 0)
    af = _ActiveFlow(f, tuple(links), bits)
    return af


class TestMaxMin:
    def test_single_flow_gets_full_capacity(self):
        flows = [_af(0, [0])]
        max_min_rates(flows, {0: 10e9})
        assert flows[0].rate_bps == pytest.approx(10e9)

    def test_equal_split_on_shared_link(self):
        flows = [_af(0, [0]), _af(1, [0]), _af(2, [0]), _af(3, [0])]
        max_min_rates(flows, {0: 8e9})
        assert all(f.rate_bps == pytest.approx(2e9) for f in flows)

    def test_max_min_not_just_equal_split(self):
        # flow A uses the narrow link 1; flows B, C only the wide link 0.
        flows = [_af(0, [0, 1]), _af(1, [0]), _af(2, [0])]
        max_min_rates(flows, {0: 9e9, 1: 1e9})
        assert flows[0].rate_bps == pytest.approx(1e9)
        # B and C share what A leaves on link 0.
        assert flows[1].rate_bps == pytest.approx(4e9)
        assert flows[2].rate_bps == pytest.approx(4e9)

    def test_capacity_conserved_per_link(self):
        flows = [_af(0, [0, 1]), _af(1, [1, 2]), _af(2, [0, 2]),
                 _af(3, [1])]
        caps = {0: 5e9, 1: 3e9, 2: 7e9}
        max_min_rates(flows, caps)
        for lid, cap in caps.items():
            used = sum(f.rate_bps for f in flows if lid in f.links)
            assert used <= cap * (1 + 1e-9)


class TestFluidSim:
    def test_single_flow_fct_is_pipe_time(self):
        topo = dumbbell(1, edge_rate_bps=10 * GBPS,
                        bottleneck_rate_bps=10 * GBPS)
        sc = make_scenario(topo, [Flow(0, 0, 1, 125_000, 0)])
        res = run_fluid(sc)
        # 1 Mbit at 10 Gbps = 100 us (fluid: no packetization or RTT)
        assert res.fcts_ps() == [pytest.approx(int(1e6 / 10e9 * PS_PER_S),
                                               rel=1e-6)]

    def test_fair_sharing_doubles_fct(self):
        topo = dumbbell(2, edge_rate_bps=10 * GBPS,
                        bottleneck_rate_bps=10 * GBPS)
        solo = run_fluid(make_scenario(topo, [Flow(0, 0, 2, 125_000, 0)]))
        pair = run_fluid(make_scenario(
            topo, [Flow(0, 0, 2, 125_000, 0), Flow(1, 1, 3, 125_000, 0)]))
        assert pair.fcts_ps()[0] == pytest.approx(2 * solo.fcts_ps()[0],
                                                  rel=1e-6)

    def test_staggered_arrivals_rate_adapt(self):
        topo = dumbbell(2, edge_rate_bps=10 * GBPS,
                        bottleneck_rate_bps=10 * GBPS)
        flows = [Flow(0, 0, 2, 1_250_000, 0),
                 Flow(1, 1, 3, 125_000, us(100))]
        res = run_fluid(make_scenario(topo, flows))
        assert res.completed() == 2
        # flow 0 alone would take 1 ms; sharing stretches it.
        assert res.flows[0].fct_ps > int(1e-3 * PS_PER_S)

    def test_all_flows_complete(self, fattree4_scenario):
        res = run_fluid(fattree4_scenario)
        assert res.completed() == len(fattree4_scenario.flows)

    def test_fast_but_no_transients(self, dumbbell_scenario):
        """CTS underestimates FCT: no slow start, no queueing, no acks."""
        from repro.des import run_baseline
        des = run_baseline(dumbbell_scenario)
        cts = run_fluid(dumbbell_scenario)
        assert cts.completed() == des.completed()
        for fid in range(4):
            assert cts.flows[fid].fct_ps < des.flows[fid].fct_ps

    def test_rate_event_count_is_small(self, fattree4_scenario):
        sim = FluidSimulator(fattree4_scenario)
        sim.run()
        # the whole point of CTS: O(flows) events, not O(packets)
        assert sim.rate_events < 10 * len(fattree4_scenario.flows)
