"""Units: exact time arithmetic both engines rely on."""

import pytest

from repro import units


def test_time_conversions_are_integers():
    assert units.ns(1) == 1_000
    assert units.us(1) == 1_000_000
    assert units.ms(1) == 1_000_000_000
    assert units.seconds(1) == units.PS_PER_S
    assert isinstance(units.us(1.5), int)
    assert units.us(1.5) == 1_500_000


def test_round_trip_reporting():
    assert units.ps_to_s(units.seconds(3)) == 3.0
    assert units.ps_to_us(units.us(7)) == 7.0


@pytest.mark.parametrize("rate,bits_ps", [
    (100 * units.GBPS, 10),
    (40 * units.GBPS, 25),
    (10 * units.GBPS, 100),
    (1 * units.GBPS, 1_000),
])
def test_serialization_exact_for_evaluation_rates(rate, bits_ps):
    # one byte = 8 bit-times, exactly
    assert units.serialization_time_ps(1, rate) == 8 * bits_ps
    # a full MTU frame
    assert units.serialization_time_ps(1500, rate) == 1500 * 8 * bits_ps


def test_serialization_monotone_in_size():
    prev = 0
    for size in range(1, 100):
        t = units.serialization_time_ps(size, 10 * units.GBPS)
        assert t > prev
        prev = t


def test_serialization_additive():
    r = 10 * units.GBPS
    assert (units.serialization_time_ps(700, r)
            + units.serialization_time_ps(800, r)
            == units.serialization_time_ps(1500, r))
