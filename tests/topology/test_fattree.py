"""FatTree generator: structure and closed-form counts."""

import pytest

from repro.errors import TopologyError
from repro.topology import fattree, fattree_counts
from repro.units import GBPS, us


@pytest.mark.parametrize("k", [2, 4, 8])
def test_element_counts_match_closed_form(k):
    topo = fattree(k)
    counts = fattree_counts(k)
    assert topo.num_hosts == counts["hosts"] == k ** 3 // 4
    assert len(topo.switches) == counts["switches"] == 5 * k ** 2 // 4
    assert topo.num_links == counts["links"] == 3 * k ** 3 // 4
    assert topo.num_interfaces == counts["interfaces"]


def test_port_radix_is_k():
    k = 4
    topo = fattree(k)
    for sw in topo.switches:
        assert topo.ports_of(sw) == k
    for h in topo.hosts:
        assert topo.ports_of(h) == 1


def test_uniform_rate_and_delay():
    topo = fattree(4, rate_bps=25 * GBPS, delay_ps=us(2))
    assert all(l.rate_bps == 25 * GBPS for l in topo.links)
    assert topo.min_link_delay_ps() == us(2)


def test_rejects_bad_arity():
    for k in (0, 1, 3, -2):
        with pytest.raises(TopologyError):
            fattree(k)
        with pytest.raises(TopologyError):
            fattree_counts(k)


def test_full_bisection_paths_exist():
    """Every host pair must be connected (BFS reachability)."""
    from repro.routing import build_fib
    topo = fattree(4)
    fib = build_fib(topo)
    hosts = topo.hosts
    path = fib.path(hosts[0], hosts[-1], flow_id=1)
    # cross-pod path: host-edge-agg-core-agg-edge-host = 7 nodes
    assert len(path) == 7
    # same-edge-switch path: 3 nodes
    path = fib.path(hosts[0], hosts[1], flow_id=1)
    assert len(path) == 3


def test_ecmp_uses_multiple_core_paths():
    from repro.routing import build_fib
    topo = fattree(4)
    fib = build_fib(topo)
    hosts = topo.hosts
    cores = set()
    # Different flows between far hosts should spread over cores.
    for flow_id in range(32):
        path = fib.path(hosts[0], hosts[-1], flow_id)
        cores.add(path[3])
    assert len(cores) >= 2, "ECMP never spread across core switches"
