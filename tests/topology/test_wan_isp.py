"""WAN topologies: Abilene, GEANT, the synthetic ISP generator."""

import pytest

from repro.routing import build_fib
from repro.topology import abilene, geant, isp_wan


def test_abilene_shape():
    topo = abilene()
    # 12 routers / 15 backbone links, one server per router (paper).
    assert len(topo.switches) == 12
    assert topo.num_hosts == 12
    assert topo.num_links == 15 + 12


def test_geant_shape():
    topo = geant()
    assert len(topo.switches) == 23
    assert topo.num_hosts == 23
    assert topo.num_links == 36 + 23


@pytest.mark.parametrize("make", [abilene, geant])
def test_wan_fully_routable(make):
    topo = make()
    fib = build_fib(topo)
    hosts = topo.hosts
    for dst in hosts[1:4]:
        path = fib.path(hosts[0], dst, flow_id=5)
        assert path[0] == hosts[0] and path[-1] == dst


def test_isp_wan_deterministic():
    a = isp_wan(seed=3)
    b = isp_wan(seed=3)
    assert a.num_nodes == b.num_nodes
    assert a.num_links == b.num_links
    assert [l.delay_ps for l in a.links] == [l.delay_ps for l in b.links]


def test_isp_wan_seed_changes_topology():
    a = isp_wan(seed=3)
    b = isp_wan(seed=4)
    assert (a.num_links != b.num_links
            or [l.node_a for l in a.links] != [l.node_a for l in b.links])


def test_isp_wan_scales_with_parameters():
    small = isp_wan(backbone_routers=10, provinces=2, provincial_routers=5,
                    metros_per_province=2, metro_routers=3, seed=1)
    big = isp_wan(backbone_routers=40, provinces=8, provincial_routers=20,
                  metros_per_province=4, metro_routers=6, seed=1)
    assert big.num_nodes > 4 * small.num_nodes


def test_isp_wan_irregular_degrees():
    topo = isp_wan(seed=5)
    degrees = sorted(topo.ports_of(s) for s in topo.switches)
    # heavy-tailed: max degree well above the median
    assert degrees[-1] >= 3 * degrees[len(degrees) // 2]


def test_isp_wan_routable():
    topo = isp_wan(seed=5)
    hosts = topo.hosts
    fib = build_fib(topo, dests=hosts[:3])
    for dst in hosts[1:3]:
        path = fib.path(hosts[0], dst, flow_id=2)
        assert path[-1] == dst
