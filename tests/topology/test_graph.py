"""Topology core model: nodes, links, interfaces, freeze semantics."""

import pytest

from repro.errors import TopologyError
from repro.topology import NodeKind, Topology
from repro.units import GBPS, us


def build_triangle():
    topo = Topology("tri")
    h0 = topo.add_host("h0")
    h1 = topo.add_host("h1")
    s0 = topo.add_switch("s0")
    s1 = topo.add_switch("s1")
    topo.add_link(h0, s0, 10 * GBPS, us(1))
    topo.add_link(h1, s1, 10 * GBPS, us(2))
    topo.add_link(s0, s1, 40 * GBPS, us(3))
    return topo, (h0, h1, s0, s1)


def test_basic_construction():
    topo, (h0, h1, s0, s1) = build_triangle()
    topo.freeze()
    assert topo.num_nodes == 4
    assert topo.num_links == 3
    assert topo.num_hosts == 2
    assert topo.hosts == [h0, h1]
    assert topo.switches == [s0, s1]
    assert topo.nodes[h0].is_host
    assert not topo.nodes[s0].is_host


def test_interfaces_pair_up():
    topo, (h0, h1, s0, s1) = build_triangle()
    topo.freeze()
    assert topo.num_interfaces == 6
    for iface in topo.interfaces:
        peer = topo.interfaces[iface.peer_iface]
        assert peer.peer_iface == iface.iface_id
        assert peer.node == iface.peer_node
        assert peer.rate_bps == iface.rate_bps
        assert peer.delay_ps == iface.delay_ps


def test_iface_lookup_and_host_iface():
    topo, (h0, h1, s0, s1) = build_triangle()
    topo.freeze()
    nic = topo.host_iface(h0)
    assert nic.node == h0 and nic.port == 0
    assert nic.peer_node == s0
    with pytest.raises(TopologyError):
        topo.host_iface(s0)
    with pytest.raises(TopologyError):
        topo.iface(h0, 5)


def test_min_link_delay_is_lookahead():
    topo, _ = build_triangle()
    topo.freeze()
    assert topo.min_link_delay_ps() == us(1)


def test_freeze_required_invariants():
    topo = Topology("bad")
    h = topo.add_host("h")
    with pytest.raises(TopologyError):
        topo.freeze()  # host with no link
    s = topo.add_switch("s")
    topo.add_link(h, s)
    topo.freeze()
    with pytest.raises(TopologyError):
        topo.add_host("late")
    with pytest.raises(TopologyError):
        topo.add_link(h, s)


def test_host_must_have_exactly_one_link():
    topo = Topology("multi-homed")
    h = topo.add_host()
    s0 = topo.add_switch()
    s1 = topo.add_switch()
    topo.add_link(h, s0)
    topo.add_link(h, s1)
    with pytest.raises(TopologyError):
        topo.freeze()


def test_reject_bad_links():
    topo = Topology("bad-links")
    a = topo.add_switch()
    with pytest.raises(TopologyError):
        topo.add_link(a, a)
    with pytest.raises(TopologyError):
        topo.add_link(a, 99)
    b = topo.add_switch()
    with pytest.raises(TopologyError):
        topo.add_link(a, b, rate_bps=0)
    with pytest.raises(TopologyError):
        topo.add_link(a, b, delay_ps=0)


def test_neighbors_and_ports():
    topo, (h0, h1, s0, s1) = build_triangle()
    topo.freeze()
    neigh = {n for n, _l in topo.neighbors(s0)}
    assert neigh == {h0, s1}
    assert topo.ports_of(s0) == 2
    assert topo.ports_of(h0) == 1


def test_link_other_endpoint():
    topo, (h0, h1, s0, s1) = build_triangle()
    link = topo.links[0]
    assert link.other(h0) == s0
    assert link.other(s0) == h0
    with pytest.raises(TopologyError):
        link.other(h1)
