"""Appendix A — dynamic repartitioning on drastic traffic change.

The load estimator records per-period normalized device-load vectors;
when the Wasserstein distance between consecutive vectors crosses a
threshold, a new simulation phase begins and is partitioned separately.
We build a workload whose hotspot moves between halves of an ISP WAN
mid-run and check that (1) the phase boundary is detected at the right
period, (2) each phase gets its own partition, and (3) the per-phase
plans beat a single static plan on the time-cost model.
"""

from __future__ import annotations

import pytest

from conftest import once
from repro.bench import emit, format_table
from repro.partition import (
    ClusterSpec, completion_time, dynamic_partition_plan, estimate_loads,
    time_binned_loads,
)
from repro.partition.dynamic import _merge_loads
from repro.routing import build_fib
from repro.topology import isp_wan
from repro.traffic import Flow, Transport, full_mesh_dynamic, TINY
from repro.units import GBPS, ms

MACHINES = 4
BIN_PS = ms(1)


def _shifting_workload():
    topo = isp_wan(seed=21)
    hosts = topo.hosts
    half = len(hosts) // 2
    west, east = hosts[:half], hosts[half:]
    # Phase 1 (0-2 ms): traffic concentrated in the west half;
    # Phase 2 (2-4 ms): hotspot jumps to the east half.
    f1 = full_mesh_dynamic(west, duration_ps=ms(2), load=1.2,
                           host_rate_bps=10 * GBPS, sizes=TINY, seed=1,
                           max_flows=500)
    f2 = full_mesh_dynamic(east, duration_ps=ms(2), load=1.2,
                           host_rate_bps=10 * GBPS, sizes=TINY, seed=2,
                           max_flows=500)
    flows = list(f1)
    base = len(f1)
    for f in f2:
        flows.append(Flow(base + f.flow_id, f.src, f.dst, f.size_bytes,
                          f.start_ps + ms(2), f.transport))
    return topo, flows


def test_appendix_a_dynamic_partitioning(benchmark):
    def experiment():
        topo, flows = _shifting_workload()
        fib = build_fib(topo)
        cluster = ClusterSpec.homogeneous(MACHINES)
        phases = dynamic_partition_plan(topo, fib, flows, BIN_PS, cluster,
                                        threshold=0.25)
        binned = time_binned_loads(topo, fib, flows, BIN_PS)
        return topo, fib, flows, cluster, phases, binned

    topo, fib, flows, cluster, phases, binned = once(benchmark, experiment)

    # A static plan from phase-1 traffic, applied to the whole run.
    static_plan = phases[0].plan
    rows = []
    total_static = 0.0
    total_dynamic = 0.0
    for phase in phases:
        t_static = completion_time(topo, static_plan.partition,
                                   phase.loads, cluster)
        t_dynamic = completion_time(topo, phase.plan.partition,
                                    phase.loads, cluster)
        total_static += t_static
        total_dynamic += t_dynamic
        rows.append((
            f"bins [{phase.start_bin}, {phase.end_bin})",
            f"{t_static:.4f} s", f"{t_dynamic:.4f} s",
            f"{t_static / t_dynamic:.2f}x",
        ))
    emit("appendix_dynamic", format_table(
        "Appendix A: static phase-1 plan vs per-phase repartitioning "
        "(estimated completion per phase)",
        ["phase", "static plan", "dynamic plan", "gain"],
        rows,
        note=f"{len(phases)} phases detected over {len(binned)} bins",
    ))

    # The hotspot jump is detected: at least two phases.
    assert len(phases) >= 2, "traffic change not detected"
    boundary_bins = [p.start_bin for p in phases[1:]]
    assert any(b == 2 for b in boundary_bins), boundary_bins
    # Repartitioning pays: phase-2 under its own plan beats the stale one.
    last = phases[-1]
    t_static = completion_time(topo, static_plan.partition, last.loads,
                               cluster)
    t_dynamic = completion_time(topo, last.plan.partition, last.loads,
                                cluster)
    assert t_dynamic < t_static, "repartitioning should help the new phase"
    assert total_dynamic < total_static
