"""Table 3 — planning time vs execution time per partitioning method.

Paper (same ISP WAN, 8 servers): balanced cut plans in 15 s, CFP in
42 s, DONS Partitioner in 1 m 46 s — but the Partitioner's plan cuts
execution from ~12 h to ~4 h 17 m, so planning cost is negligible
against its payoff.

Planning wall-clocks are *real measurements* on a paper-scale (~12k
router) instance of the ISP generator; the DONS Partitioner's figure
includes the Load Estimator pass over the flow set, which is what the
paper's "planning" covers ("Using Load Estimator and Partitioner with
the time-cost model for planning takes ~2 minutes").  Execution
estimates come from the Manager's own Eq. (1)-(2) model, normalized so
the balanced-cut baseline matches the paper's 12 h scale.
"""

from __future__ import annotations

import time

import pytest

from conftest import once
from repro.bench import emit, format_table
from repro.bench.scenarios import isp_scenario
from repro.machine import format_duration
from repro.partition import (
    ClusterSpec, balanced_cut_plan, cfp_plan, dons_partition, estimate_loads,
)
from repro.routing import build_fib

MACHINES = 8
#: Load-estimator input: the paper's planner sweeps the full flow set.
PLANNING_FLOWS = 20_000


def _plan_all():
    topo, flows = isp_scenario(scale="paper", duration_ms=2.0,
                               max_flows=PLANNING_FLOWS)
    fib = build_fib(topo, workers=4)
    cluster = ClusterSpec.homogeneous(MACHINES)

    # The DONS Manager's planning = Load Estimator + Partitioner.
    t0 = time.perf_counter()
    loads = estimate_loads(topo, fib, flows)
    estimator_s = time.perf_counter() - t0
    dons = dons_partition(topo, loads, cluster)

    plans = {
        "balanced-cut": balanced_cut_plan(topo, MACHINES, loads, cluster),
        "cfp": cfp_plan(topo, MACHINES, loads, cluster),
        "dons-partitioner": dons,
    }
    planning = {
        "balanced-cut": plans["balanced-cut"].planning_time_s,
        "cfp": plans["cfp"].planning_time_s,
        "dons-partitioner": dons.planning_time_s + estimator_s,
    }
    return topo, plans, planning, len(flows)


def test_table3_planning_vs_execution(benchmark):
    topo, plans, planning, n_flows = once(benchmark, _plan_all)

    # Normalize execution so the balanced-cut baseline sits at the
    # paper's ~12 h (relative values are the measured Eq. 2 estimates).
    paper_baseline_s = 12 * 3600.0
    exec_scale = paper_baseline_s / plans["balanced-cut"].estimated_time_s
    exec_s = {
        name: plan.estimated_time_s * exec_scale
        for name, plan in plans.items()
    }

    rows = [
        (name, f"{planning[name]:.2f} s", format_duration(exec_s[name]))
        for name in ("balanced-cut", "cfp", "dons-partitioner")
    ]
    emit("table3_planning", format_table(
        f"Table 3: planning vs estimated execution on the paper-scale "
        f"ISP WAN ({topo.num_nodes} nodes, {topo.num_links} links, "
        f"{n_flows} flows)",
        ["method", "planning time (measured)", "estimated execution"],
        rows,
        note="paper: 15 s / 42 s / 1 m 46 s planning; "
             "12 h / 9 h / 4.3 h execution (balanced-cut anchored)",
    ))

    # Paper-scale topology actually built and planned.
    assert topo.num_nodes > 10_000, topo.num_nodes
    # Planning cost ordering: balanced cheapest, the Partitioner (with
    # its Load Estimator pass) the most expensive.
    assert planning["balanced-cut"] < planning["cfp"]
    assert planning["balanced-cut"] < planning["dons-partitioner"]
    assert planning["dons-partitioner"] > 0.5 * planning["cfp"]
    # Execution payoff ordering is the reverse.
    assert exec_s["dons-partitioner"] < exec_s["cfp"]
    assert exec_s["dons-partitioner"] < exec_s["balanced-cut"]
    assert exec_s["dons-partitioner"] < 0.75 * exec_s["balanced-cut"]
    # The paper's headline: planning is negligible against its payoff.
    saved = exec_s["cfp"] - exec_s["dons-partitioner"]
    assert planning["dons-partitioner"] < saved
