"""Table 2 — large irregular ISP WAN: partitioning methods x simulators.

Paper: an ISP WAN (13k routers / 32k links, irregular, skewed traffic)
simulated on 8 servers under three partitionings — static balanced cut,
OMNeT++'s coupling-factor partitioning (CFP), and DONS's time-cost-model
Partitioner.  Result shape: balanced ~ CFP (both traffic-blind), the
Partitioner ~2x faster than CFP and ~2.8x faster than balanced, for
every simulator it is plugged into.

Method: a bench-scale instance of the same generator (executable in
CPython) is *actually simulated distributed* under each partition —
per-machine event counts and RPC egress are measured, not estimated —
then projected to the paper's horizon with the cluster cost model.
"""

from __future__ import annotations

import pytest

from conftest import once
from repro.bench import emit, format_table, windows_at_paper_scale
from repro.bench.scenarios import isp_scenario
from repro.cluster import DonsManager
from repro.des.partition_types import Partition
from repro.machine import cluster_time_s, format_duration, omnet_cluster_time_s
from repro.partition import (
    ClusterSpec, balanced_cut, cfp_partition, estimate_loads, plan_scenario,
)
from repro.scenario import make_scenario

MACHINES = 8
SCALED_DURATION_MS = 2.0
WINDOWS = windows_at_paper_scale()
#: Event volume of the paper-scale WAN run (back-solved from Table 2's
#: OMNeT++ baseline of 6d7h at the calibrated cluster throughput).  The
#: bench-scale runs supply the *distribution* of events and RPC traffic
#: over machines; this constant supplies the magnitude.
PAPER_WAN_EVENTS = 9.0e11


def _distributed_measurements():
    topo, flows = isp_scenario(scale="bench", duration_ms=SCALED_DURATION_MS)
    scenario = make_scenario(topo, flows, name="isp-wan-bench")
    cluster = ClusterSpec.homogeneous(MACHINES)
    loads = estimate_loads(topo, scenario.fib, flows)

    partitions = {
        "balanced-cut": balanced_cut(topo, MACHINES),
        "cfp": cfp_partition(topo, MACHINES),
        "dons-partitioner": plan_scenario(scenario, cluster, loads).partition,
    }

    out = {}
    reference = None
    for method, partition in partitions.items():
        run = DonsManager(scenario, cluster).run(partition=partition)
        fcts = run.results.fcts_ps()
        if reference is None:
            reference = fcts
        else:
            assert fcts == reference, f"{method}: results depend on partition!"
        part_events = [
            sum(run.results.node_events.get(n, 0)
                for n in partition.nodes_of(a))
            for a in range(MACHINES)
        ]
        out[method] = {
            "part_events": part_events,
            "egress": run.traffic.egress_bytes,
            "windows": run.traffic.windows,
        }
    return out


def test_table2_partitioning_methods(benchmark):
    measured = once(benchmark, _distributed_measurements)

    rows = []
    times = {}
    for method, m in measured.items():
        total = max(sum(m["part_events"]), 1)
        projection = PAPER_WAN_EVENTS / total
        ev = [int(e * projection) for e in m["part_events"]]
        eg = [int(b * projection) for b in m["egress"]]
        t_omnet = omnet_cluster_time_s(ev, eg, WINDOWS)
        t_dons = cluster_time_s(ev, eg, WINDOWS)
        times[method] = {"omnet": t_omnet, "dons": t_dons}

    base_omnet = times["balanced-cut"]["omnet"]
    for method in ("balanced-cut", "cfp", "dons-partitioner"):
        t = times[method]
        rows += [
            (method, "OMNeT++", format_duration(t["omnet"]),
             f"{base_omnet / t['omnet']:.1f}x"),
            (method, "DONS", format_duration(t["dons"]),
             f"{base_omnet / t['dons']:.1f}x"),
        ]

    emit("table2_wan_partitioning", format_table(
        "Table 2: ISP WAN on 8 servers, partitioning method x simulator "
        "(speedup vs OMNeT++ with balanced cut)",
        ["method", "simulator", "time", "speedup"],
        rows,
        note="paper: Partitioner beats CFP ~2x and balanced ~2.8x; "
             "distributed results identical under every partition",
    ))

    # --- shape assertions -------------------------------------------------
    # Paper §6.2: "the static CFP and static balanced cut have similar
    # effects, as they do not consider dynamic traffic patterns", while
    # the "Partitioner can improve the simulation speed by ~2x compared
    # to CFP".
    for sim in ("omnet", "dons"):
        t_bal = times["balanced-cut"][sim]
        t_cfp = times["cfp"][sim]
        t_dons = times["dons-partitioner"][sim]
        assert t_dons < min(t_bal, t_cfp), (
            f"{sim}: Partitioner must beat both static methods "
            f"({t_dons:.0f} vs {t_cfp:.0f} / {t_bal:.0f})"
        )
        # The two traffic-blind statics land in the same ballpark.
        assert 0.5 <= t_cfp / t_bal <= 2.0, (
            f"{sim}: statics not similar ({t_cfp:.0f} vs {t_bal:.0f})"
        )
        gain = min(t_bal, t_cfp) / t_dons
        assert 1.3 <= gain <= 4.0, (
            f"{sim}: Partitioner gain over best static {gain:.2f}"
        )
    # DONS engine beats OMNeT++ under every partitioning method.
    for method in times:
        assert times[method]["dons"] < times[method]["omnet"]
