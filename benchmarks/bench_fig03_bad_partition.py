"""Fig. 3 — a badly-partitioned parallel run is slower than serial.

Paper setup: the nodes of a FatTree are randomly divided between two
ns-3 processes; synchronization overhead makes the pair slower than one
process.  We execute the actual null-message algorithm over the random
partition, then price the measured per-LP loads, rounds and messages
with the cost model.
"""

from __future__ import annotations

import pytest

from conftest import once
from repro.bench import emit, format_table
from repro.bench.scenarios import dcn_scenario
from repro.des import ParallelOodSimulator, random_partition
from repro.des.simulator import OodSimulator
from repro.machine import (
    CacheConfig, OodAccessModel, format_duration, multiprocess_time_s,
    sequential_time_s,
)


def test_fig03_bad_partition_slower_than_serial(benchmark):
    scenario = dcn_scenario(8, duration_ms=1.0, max_flows=600, seed=5)
    topo = scenario.topology

    def experiment():
        ood = OodAccessModel(topo.num_nodes, topo.num_interfaces,
                             topo.num_hosts)
        serial = OodSimulator(scenario, op_hook=ood).run()
        from repro.bench import measure_cmr
        cmr = measure_cmr(ood)
        part = random_partition(topo, 2, seed=1)
        psim = ParallelOodSimulator(scenario, part)
        parallel = psim.run()
        return serial, cmr, psim.stats, parallel

    serial, cmr, stats, parallel = once(benchmark, experiment)

    t1 = sequential_time_s(serial.events.total, cmr)
    t2 = multiprocess_time_s(
        stats.lp_events, cmr, stats.rounds,
        stats.null_messages + stats.data_messages,
    )

    rows = [
        ("ns-3, 1 process", format_duration(t1), "1.00x", "baseline"),
        ("ns-3, 2 processes (random partition)", format_duration(t2),
         f"{t1 / t2:.2f}x", "slower than serial (paper Fig. 3)"),
    ]
    emit("fig03_bad_partition", format_table(
        "Fig 3: random 2-way partition vs serial (modeled from executed "
        "null-message run)",
        ["configuration", "modeled time", "speedup", "paper shape"],
        rows,
        note=(f"measured: lp_events={stats.lp_events} "
              f"rounds={stats.rounds} nulls={stats.null_messages} "
              f"data_msgs={stats.data_messages}"),
    ))

    # Same results, slower wall-clock.
    assert parallel.fcts_ps() == serial.fcts_ps()
    assert t2 > t1, "bad partition should be slower than serial"
    # Imbalance + sync overhead, not a small margin.
    assert t2 / t1 > 1.2
