"""Fig. 2 — the motivation measurements.

(a) L3 cache miss rate of the OOD baseline vs DONS over FatTree sizes:
    the paper reports ns-3 always > 4% and growing, DONS < 0.15%.
(b) ns-3 memory usage vs process count on FatTree16: per-LP state
    duplication drives 132.5 GB at 32 processes.

Miss rates are measured by replaying each engine's actual operation
stream through the cache simulator with that engine's layout model
(DESIGN.md substitution); memory comes from the structural model
calibrated once against the paper's anchors.
"""

from __future__ import annotations

import pytest

from conftest import once
from repro.bench import emit, format_table
from repro.bench.scenarios import dcn_scenario, run_dons_probed
from repro.des.simulator import OodSimulator
from repro.machine import (
    CacheConfig, DodAccessModel, OodAccessModel, StructuralCounts,
    ns3_memory_bytes,
)
from repro.units import GIB


def _miss_rates(k: int):
    # The paper holds fractional load constant, so flow count grows with
    # the host count; the cap scales accordingly.
    scenario = dcn_scenario(k, duration_ms=0.5, max_flows=75 * k, seed=5)
    topo = scenario.topology
    ood = OodAccessModel(topo.num_nodes, topo.num_interfaces, topo.num_hosts)
    OodSimulator(scenario, op_hook=ood).run()
    dod = DodAccessModel(topo.num_nodes, topo.num_interfaces,
                         topo.num_hosts, len(scenario.flows))
    run_dons_probed(scenario, dod)
    from repro.bench import measure_cmr
    return measure_cmr(ood), measure_cmr(dod)


def test_fig02a_cache_miss_rate(benchmark):
    ks = (4, 8, 16)

    def experiment():
        return {k: _miss_rates(k) for k in ks}

    rates = once(benchmark, experiment)

    rows = [
        (f"FatTree{k}", f"{rates[k][0]:.2f}%", f"{rates[k][1]:.3f}%",
         "> 4%", "< 0.15%")
        for k in ks
    ]
    emit("fig02a_cache_miss", format_table(
        "Fig 2a: L3 cache miss rate (measured via cache model)",
        ["topology", "ood-des (ns-3)", "DONS", "paper ns-3", "paper DONS"],
        rows,
        note="replayed op streams, scaled L3 (see bench.scenarios), steady state",
    ))

    ood = [rates[k][0] for k in ks]
    dod = [rates[k][1] for k in ks]
    # Shape claims: OOD high and growing with scale, DONS far lower.
    # (The paper's < 0.15% is a billion-access steady state over ~1000-
    # segment flows; our scaled flows are ~10 segments, so per-flow cold
    # misses amortize less — hence the looser absolute bound here, while
    # the OOD/DOD *ratio* claim is asserted at full strength.)
    assert ood[-1] > 3.0, f"OOD miss rate too low: {ood}"
    assert ood[0] < ood[-1], "OOD miss rate should grow with topology"
    assert max(dod) < 0.5, f"DONS miss rate too high: {dod}"
    assert all(o / max(d, 1e-6) > 10 for o, d in zip(ood, dod) if o > 1)


def test_fig02b_ns3_memory_vs_processes(benchmark):
    counts = StructuralCounts.from_fattree_k(16)

    def experiment():
        return {p: ns3_memory_bytes(counts, p) for p in (1, 2, 4, 8, 16, 32)}

    mem = once(benchmark, experiment)

    rows = [(p, f"{mem[p] / GIB:.1f} GB") for p in sorted(mem)]
    emit("fig02b_ns3_memory", format_table(
        "Fig 2b: ns-3 memory usage vs #processes (FatTree16)",
        ["processes", "modeled memory"],
        rows,
        note="paper: 132.5 GB at 32 processes (memory duplicated per LP)",
    ))

    gb32 = mem[32] / GIB
    assert 100 <= gb32 <= 170, f"32-process footprint off: {gb32:.0f} GB"
    # Linear-in-LPs growth (the duplication pathology).
    assert abs(mem[32] / mem[1] - 32) < 1e-6
