"""Feature study: per-flow ECMP vs packet spraying.

Per-flow hashing (the paper's ECMP) can collide elephants onto one core
path; packet spraying balances perfectly but reorders.  This bench runs
both modes on a leaf-spine fabric with two colliding elephants and
reports the load split across spines and the FCT outcome — the classic
trade-off, reproduced on this repository's engines (which agree under
both modes, including the reordering-induced retransmission dynamics).
"""

from __future__ import annotations

import pytest

from conftest import once
from repro.bench import emit, format_table
from repro.core.engine import run_dons
from repro.des import run_baseline
from repro.metrics import TraceLevel
from repro.metrics.traceview import hops
from repro.scenario import make_scenario
from repro.topology import leaf_spine
from repro.traffic import Flow
from repro.units import GBPS, ps_to_us


def _spine_split(trace, topo, flow_ids, seqs=80):
    counts = {}
    for fid in flow_ids:
        for seq in range(seqs):
            hop_list = hops(trace, fid, seq)
            if len(hop_list) >= 2:
                iface = hop_list[1].iface_id
                counts[iface] = counts.get(iface, 0) + 1
    return counts


def test_ecmp_spraying_tradeoff(benchmark):
    topo = leaf_spine(2, 2, hosts_per_leaf=6,
                      host_rate_bps=10 * GBPS, fabric_rate_bps=10 * GBPS)
    hosts = topo.hosts
    leaf0_hosts, leaf1_hosts = hosts[:6], hosts[6:]
    # Construct a genuine hash collision: find a destination for the
    # second elephant such that per-flow ECMP puts both flows on the
    # same leaf uplink (what happens to unlucky elephants in practice).
    from repro.routing import build_fib
    fib = build_fib(topo)
    leaf0 = topo.host_iface(leaf0_hosts[0]).peer_node
    uplink0 = fib.resolve_port(leaf0, leaf1_hosts[0], 0)
    dst1 = next(
        d for d in leaf1_hosts[1:]
        if fib.resolve_port(leaf0, d, 1) == uplink0
    )
    flows = [Flow(0, leaf0_hosts[0], leaf1_hosts[0], 400_000, 0),
             Flow(1, leaf0_hosts[1], dst1, 400_000, 0)]

    def experiment():
        out = {}
        for mode in ("flow", "packet"):
            sc = make_scenario(topo, flows, ecmp_mode=mode)
            a = run_baseline(sc, TraceLevel.FULL)
            b = run_dons(sc, TraceLevel.FULL)
            assert a.trace.digest() == b.trace.digest(), mode
            out[mode] = a
        return out

    results = once(benchmark, experiment)

    rows = []
    splits = {}
    for mode, res in results.items():
        counts = _spine_split(res.trace, topo, [0, 1])
        total = sum(counts.values())
        imbalance = max(counts.values()) / total if total else 1.0
        splits[mode] = imbalance
        rows.append((
            mode,
            f"{len(counts)} uplinks used",
            f"{imbalance:.0%} on busiest",
            f"{ps_to_us(max(res.fcts_ps())):.0f} us",
        ))
    emit("ecmp_spraying", format_table(
        "Per-flow ECMP vs packet spraying (2 elephants, 2-spine fabric)",
        ["mode", "path diversity", "load concentration", "max FCT"],
        rows,
        note="engines trace-identical in both modes",
    ))

    # The colliding elephants pin one uplink under per-flow hashing...
    assert splits["flow"] > 0.9, f"collision not constructed: {splits}"
    # ...and spraying splits them roughly evenly.
    assert splits["packet"] < 0.75, "spraying should roughly halve the load"
    # Balancing the bottleneck buys completion time despite reordering.
    assert (max(results["packet"].fcts_ps())
            < max(results["flow"].fcts_ps()))
    for res in results.values():
        assert res.completed() == 2
