"""Fig. 13 — per-system CPU breakdown of DONS over time.

Paper setup: FatTree16 on a MacBook Air M1 (8 cores), Unity Profiler
sampling 1 ms of execution.  Observations to reproduce: most of the
time all 8 cores are fully utilized; the TransmitSystem takes the lion's
share; systems execute strictly in the correctness-preserving order.
"""

from __future__ import annotations

import pytest

from conftest import once
from repro.bench import emit, format_table, measure_cmr
from repro.bench.scenarios import dcn_scenario, run_dons_probed
from repro.machine import (
    DodAccessModel, MACBOOK_M1, dons_system_timeline, dons_time_s,
)
from repro.machine.cost import cost_cmr


def test_fig13_system_breakdown(benchmark):
    scenario = dcn_scenario(16, duration_ms=0.3, max_flows=1200, seed=5)
    topo = scenario.topology

    def experiment():
        dod = DodAccessModel(topo.num_nodes, topo.num_interfaces,
                             topo.num_hosts, len(scenario.flows))
        results = run_dons_probed(scenario, dod)
        cmr = cost_cmr(measure_cmr(dod), is_dod=True)
        return results, cmr

    results, cmr = once(benchmark, experiment)

    timeline = dons_system_timeline(results.window_breakdown, cmr,
                                    MACBOOK_M1, workers=MACBOOK_M1.cores)
    assert timeline, "no windows recorded"

    # Busy-core sample of the first windows (the figure's x axis).
    rows = [
        (f"{row['t_ps'] / 1e6:.1f}", f"{row['ack']:.1f}",
         f"{row['send']:.1f}", f"{row['forward']:.1f}",
         f"{row['transmit']:.1f}")
        for row in timeline[:12]
    ]
    bd = dons_time_s(results.window_breakdown, cmr, MACBOOK_M1,
                     workers=MACBOOK_M1.cores)
    shares = {k: v / bd.total_s for k, v in bd.per_system_s.items()}
    emit("fig13_breakdown", format_table(
        "Fig 13: DONS per-system busy cores over time (M1, 8 cores)",
        ["t (us)", "ack", "send", "forward", "transmit"],
        rows,
        note="span shares: " + ", ".join(
            f"{k}={v:.0%}" for k, v in sorted(shares.items())),
    ))

    # --- shape claims -----------------------------------------------------
    # TransmitSystem takes the lion's share of the execution span.
    assert shares["transmit"] == max(shares.values())
    assert shares["transmit"] > 0.3
    # All four systems execute (every aspect appears in the profile).
    assert all(shares.get(name, 0) > 0 for name in
               ("ack", "send", "forward", "transmit"))
    # In busy windows most of the 8 cores are occupied.
    busy = [max(r["ack"], r["send"], r["forward"], r["transmit"])
            for r in timeline]
    busiest = sorted(busy, reverse=True)[: max(1, len(busy) // 10)]
    assert min(busiest) >= 6.0, "busy windows should use most cores"
