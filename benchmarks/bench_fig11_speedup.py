"""Fig. 11 — simulation speedup versus single-process ns-3.

Paper series per topology: ns-3 (1, 2, 32 processes), OMNeT++, DONS;
speedup = t_ns3(1) / t_x.  On FatTrees the paper's DONS speedup grows
from 3x (FatTree4) to 22x (FatTree32); 2-process ns-3 is *slower* than
1 process; 32 processes barely help.  On the WANs (Abilene, GEANT) DONS
gains ~4x and ~7x.

Method: scaled packet-level runs measure everything scenario-specific —
event counts and per-system shares, per-LP load shares from executed
null-message runs, per-window burstiness, cache miss rates — and the
cost model projects every engine to the paper's horizon (1000 ms, 1 us
lookahead windows), so all series share one scale.  FatTree32 is
projected from FatTree16 ratios (no 8k-server packet run in CPython).
"""

from __future__ import annotations

from typing import Dict

import numpy as np
import pytest

from conftest import once
from repro.bench import (
    EventRatios, emit, fattree_full_events, format_table, measure_cmr,
    windows_at_paper_scale,
)
from repro.bench.scenarios import dcn_scenario, run_dons_probed, wan_scenario
from repro.des import ParallelOodSimulator, contiguous_partition
from repro.des.simulator import OodSimulator
from repro.machine import (
    DodAccessModel, OodAccessModel, XEON_SERVER, sequential_time_s,
)
from repro.machine.cost import (
    cost_cmr, dons_time_uniform, multiprocess_paper_scale_s,
)

WINDOWS = windows_at_paper_scale()  # 1e6 windows = 1000 ms at 1 us


def _measure(scenario, scaled_duration_ms, lp_counts):
    """Scaled run -> everything the projection needs."""
    topo = scenario.topology
    ood = OodAccessModel(topo.num_nodes, topo.num_interfaces, topo.num_hosts)
    serial = OodSimulator(scenario, op_hook=ood).run()
    cmr_ood = cost_cmr(measure_cmr(ood))

    dod = DodAccessModel(topo.num_nodes, topo.num_interfaces,
                         topo.num_hosts, len(scenario.flows))
    dons = run_dons_probed(scenario, dod)
    cmr_dod = cost_cmr(measure_cmr(dod), is_dod=True)

    wb = dons.window_breakdown
    totals = np.array([sum(w[1:5]) for w in wb], dtype=float)
    burst = float(np.percentile(totals, 95) / max(totals.mean(), 1e-9))
    shares = [sum(w[i] for w in wb) for i in range(1, 5)]

    lp_shares = {}
    for n in lp_counts:
        if n >= topo.num_nodes:
            continue
        psim = ParallelOodSimulator(scenario, contiguous_partition(topo, n))
        psim.run()
        total = max(sum(psim.stats.lp_events), 1)
        lp_shares[n] = max(psim.stats.lp_events) / total

    events_paper = int(serial.events.total * (1000.0 / scaled_duration_ms))
    return {
        "events": events_paper,
        "cmr_ood": cmr_ood,
        "cmr_dod": cmr_dod,
        "shares": shares,
        "burst": max(1.0, burst),
        "lp_shares": lp_shares,
        "serial": serial,
    }


def _speedups(m) -> Dict[str, float]:
    t1 = sequential_time_s(m["events"], m["cmr_ood"])
    out = {"ns-3 (1)": 1.0}
    for n, share in m["lp_shares"].items():
        tn = multiprocess_paper_scale_s(
            m["events"], WINDOWS, m["cmr_ood"], n, share, m["burst"],
        )
        out[f"ns-3 ({n})"] = t1 / tn
    if m["lp_shares"]:
        n = max(m["lp_shares"])
        # OMNeT++: same OOD architecture, leaner sync kernel (modeled at
        # half the per-window exchange cost; see DESIGN.md).
        to = multiprocess_paper_scale_s(
            m["events"], WINDOWS, m["cmr_ood"], n, m["lp_shares"][n],
            m["burst"], sync_scale=0.5,
        )
        out["OMNeT++"] = t1 / to
    td = dons_time_uniform(m["events"], WINDOWS, m["shares"], m["cmr_dod"],
                           XEON_SERVER, XEON_SERVER.cores)
    out["DONS"] = t1 / td.total_s
    return out


def test_fig11_fattree_and_wan_speedups(benchmark):
    cases = {
        "FatTree4": (dcn_scenario(4, duration_ms=0.5, max_flows=300, seed=5),
                     0.5, (2, 32)),
        "FatTree8": (dcn_scenario(8, duration_ms=0.5, max_flows=600, seed=5),
                     0.5, (2, 32)),
        "FatTree16": (dcn_scenario(16, duration_ms=0.3, max_flows=1200, seed=5),
                      0.3, (2, 32)),
        "Abilene": (wan_scenario("abilene", duration_ms=1.0, max_flows=300),
                    1.0, (2,)),
        "GEANT": (wan_scenario("geant", duration_ms=1.0, max_flows=400),
                  1.0, (2,)),
    }

    def experiment():
        return {
            name: _measure(sc, dur, lps)
            for name, (sc, dur, lps) in cases.items()
        }

    measured = once(benchmark, experiment)

    all_speedups = {name: _speedups(m) for name, m in measured.items()}
    rows = []
    for name, sp in all_speedups.items():
        rows.append((
            name,
            f"{sp.get('ns-3 (2)', float('nan')):.2f}x",
            f"{sp.get('ns-3 (32)', float('nan')):.2f}x",
            f"{sp.get('OMNeT++', float('nan')):.2f}x",
            f"{sp['DONS']:.1f}x",
        ))

    # FatTree32 projected from FatTree16 measured ratios.
    m16 = measured["FatTree16"]
    ratios = EventRatios.measure(m16["serial"])
    e32 = fattree_full_events(32, ratios)
    t1_32 = sequential_time_s(e32, m16["cmr_ood"])
    td_32 = dons_time_uniform(e32, WINDOWS, m16["shares"], m16["cmr_dod"],
                              XEON_SERVER, XEON_SERVER.cores)
    sp32 = t1_32 / td_32.total_s
    rows.append(("FatTree32 (projected)", "OOM", "OOM", "-", f"{sp32:.1f}x"))

    emit("fig11_speedup", format_table(
        "Fig 11: speedup vs single-process ns-3 (projected to the paper's "
        "1000 ms horizon from measured scaled runs)",
        ["topology", "ns-3(2)", "ns-3(32)", "OMNeT++", "DONS"],
        rows,
        note="paper: DONS 3x (FatTree4) -> 22x (FatTree32); "
             "Abilene ~4x, GEANT ~7x; ns-3(2) < 1x; ns-3 OOMs at FatTree32",
    ))

    # --- shape assertions -----------------------------------------------
    for name in ("FatTree4", "FatTree8", "FatTree16"):
        sp = all_speedups[name]
        assert sp["ns-3 (2)"] < 1.0, f"{name}: 2-proc should be slower"
        assert sp["DONS"] > sp.get("ns-3 (32)", 0), f"{name}: DONS must win"
        assert sp.get("ns-3 (32)", 99) < 4.0, f"{name}: 32-proc too fast"
    d4 = all_speedups["FatTree4"]["DONS"]
    d8 = all_speedups["FatTree8"]["DONS"]
    d16 = all_speedups["FatTree16"]["DONS"]
    assert d4 < d8 <= d16 <= sp32 * 1.05, (d4, d8, d16, sp32)
    assert 2.0 <= d4 <= 9.0, f"FatTree4 speedup out of band: {d4:.1f}"
    assert 12.0 <= sp32 <= 35.0, f"FatTree32 speedup out of band: {sp32:.1f}"
    # WANs: modest speedups, larger WAN parallelizes better.
    assert 1.5 <= all_speedups["Abilene"]["DONS"] <= 15.0
    assert all_speedups["Abilene"]["DONS"] < all_speedups["GEANT"]["DONS"]
