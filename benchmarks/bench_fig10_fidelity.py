"""Fig. 10 — fidelity: DONS has the same RTT evolution and FCT
distribution as the OOD DES baselines, down to event timestamps.

Paper setup: FatTree8, 64 flows x 1.5 MB, DCTCP.  Scaled here to 10 Gbps
links (paper: 100 Gbps) so queueing dynamics are pronounced; flow count
and sizes are the paper's.  The assertion is the paper's strongest
claim, checked literally: byte-identical sorted event traces and w1 = 0
between engines.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import once
from repro import run_baseline, run_dons
from repro.bench import emit, format_table
from repro.bench.scenarios import dcn_scenario
from repro.metrics import TraceLevel, normalized_w1
from repro.scenario import make_scenario
from repro.topology import fattree
from repro.traffic import fixed_flows
from repro.units import GBPS, us


def _scenario():
    topo = fattree(8, rate_bps=10 * GBPS, delay_ps=us(1))
    flows = fixed_flows(topo.hosts, n_flows=64, size_bytes=1_500_000, seed=10)
    return make_scenario(topo, flows, name="fig10-fattree8-64x1.5MB")


def test_fig10_fidelity(benchmark):
    scenario = _scenario()

    def experiment():
        baseline = run_baseline(scenario, TraceLevel.FULL)
        dons = run_dons(scenario, TraceLevel.FULL)
        return baseline, dons

    baseline, dons = once(benchmark, experiment)

    # --- the fidelity claims -------------------------------------------
    ta = baseline.trace.sorted_entries()
    tb = dons.trace.sorted_entries()
    assert len(ta) > 100_000, "scenario too small to be meaningful"
    assert ta == tb, "event traces differ between engines"
    assert baseline.trace.digest() == dons.trace.digest()
    assert baseline.rtt_samples == dons.rtt_samples
    assert baseline.fcts_ps() == dons.fcts_ps()
    assert baseline.completed() == 64

    rtts = baseline.rtts_ps()
    w1 = normalized_w1(dons.rtts_ps(), rtts)
    assert w1 == 0.0

    # --- Fig. 10a: RTT of the first 200 packets -------------------------
    first200 = rtts[:200]
    rows = [
        (i, f"{first200[i] / 1e6:.2f}", f"{dons.rtts_ps()[i] / 1e6:.2f}")
        for i in range(0, 200, 20)
    ]
    emit("fig10a_rtt_evolution", format_table(
        "Fig 10a: RTT evolution (us), first 200 packets",
        ["pkt#", "ood-des (ns-3/OMNeT++ stand-in)", "DONS"],
        rows,
        note="full 200-sample series identical between engines",
    ))

    # --- Fig. 10b: FCT distribution --------------------------------------
    fcts = np.asarray(baseline.fcts_ps()) / 1e9  # -> ms
    qs = [0, 25, 50, 75, 90, 99, 100]
    rows = [(f"p{q}", f"{np.percentile(fcts, q):.3f} ms") for q in qs]
    emit("fig10b_fct_distribution", format_table(
        "Fig 10b: FCT distribution (identical across engines)",
        ["percentile", "FCT"],
        rows,
        note=f"64 flows x 1.5 MB; normalized w1(DONS, baseline) = {w1}",
    ))
