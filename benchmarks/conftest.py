"""Benchmark-suite configuration.

Each bench regenerates one paper table/figure: it runs the scaled
measurement, prints the table (also written to benchmarks/out/), and
asserts the paper's *shape* claims — who wins, by roughly what factor,
where crossovers fall.  pytest-benchmark wraps the measurement kernel so
``pytest benchmarks/ --benchmark-only`` times each experiment once.
"""

import pytest


def once(benchmark, fn):
    """Run an expensive experiment exactly once under the benchmark fixture."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
