"""Table 1 — FatTree64 (65,536 servers) on a 4/8-machine cluster.

Paper rows (time, speedup vs OMNeT++, w1 of the RTT distribution):

    4 machines: OMNeT++ 9d14h24m (baseline) | DQN 2h56m, 78.5x, 0.43
                | DONS 5h27m, 42.2x, 0
    8 machines: OMNeT++ 7d19h8m (baseline)  | DQN 1h48m, 104.1x, 0.46
                | DONS 2h53m, 65.0x, 0

Method: event counts extrapolated from a measured FatTree16 run (the
per-packet event/byte ratios are scale-free); machine loads split by the
pod-symmetric partition both partitioners find; RPC traffic from the
cross-machine flow fraction; wall-clocks from the cluster cost model.
The w1 columns are *measured*: the APA is trained on small DES runs and
scored against a congested DES ground truth; the DES engines' w1 is 0
by trace equality.
"""

from __future__ import annotations

import pytest

from conftest import once
from repro.bench import (
    EventRatios, emit, format_table, full_mesh_packets, measure_cmr,
    windows_at_paper_scale,
)
from repro.bench.scenarios import dcn_scenario, run_dons_probed
from repro.apa import DeepQueueNetLike
from repro.cluster import RPC_RECORD_BYTES
from repro.des.simulator import OodSimulator, run_baseline
from repro.machine import (
    OodAccessModel, DodAccessModel, apa_time_s, cluster_time_s,
    format_duration, omnet_cluster_time_s,
)
from repro.machine.cost import cost_cmr
from repro.metrics import normalized_w1
from repro.topology import fattree_counts

WINDOWS = windows_at_paper_scale()
HOSTS64 = fattree_counts(64)["hosts"]


def _measure_ratios_and_w1():
    """Scaled FatTree16 run for ratios + APA w1 measurement."""
    scenario = dcn_scenario(16, duration_ms=0.3, max_flows=1200, seed=5)
    topo = scenario.topology
    ood = OodAccessModel(topo.num_nodes, topo.num_interfaces, topo.num_hosts)
    serial = OodSimulator(scenario, op_hook=ood).run()
    cmr_ood = cost_cmr(measure_cmr(ood))
    dod = DodAccessModel(topo.num_nodes, topo.num_interfaces,
                         topo.num_hosts, len(scenario.flows))
    run_dons_probed(scenario, dod)
    cmr_dod = cost_cmr(measure_cmr(dod), is_dod=True)

    # APA trained on small runs, scored out of distribution — a bigger
    # topology, heavier load and a different size mix, mirroring the gap
    # between DQN's training regime and the FatTree64 target that drives
    # the paper's w1 of 0.43-0.46.
    from repro.traffic import FB_CACHE
    train = []
    for seed in (1, 2, 3):
        sc = dcn_scenario(8, duration_ms=1.0, load=0.3, max_flows=250,
                          seed=seed)
        train.append((sc, run_baseline(sc)))
    apa = DeepQueueNetLike().fit(train)
    test = dcn_scenario(16, duration_ms=0.5, load=0.8, max_flows=900,
                        seed=77, sizes=FB_CACHE)
    truth = run_baseline(test)
    pred = apa.predict(test)
    w1 = normalized_w1(pred.rtt_samples_ps,
                       [r for _t, r, _f in truth.rtt_samples])
    return EventRatios.measure(serial), cmr_ood, cmr_dod, w1


def test_table1_fattree64_cluster(benchmark):
    ratios, cmr_ood, cmr_dod, w1_dqn = once(benchmark, _measure_ratios_and_w1)

    packets = full_mesh_packets(HOSTS64)
    events = int(packets * ratios.events_per_packet)

    rows = []
    speedups = {}
    for machines in (4, 8):
        # FatTree pods split evenly; uniform endpoints put (1 - 1/m) of
        # flows across machines; transit adds ~50% more egress records.
        part_events = [events // machines] * machines
        cross = packets * (1.0 - 1.0 / machines) * 1.5 / machines
        part_egress = [int(cross * RPC_RECORD_BYTES)] * machines

        t_omnet = omnet_cluster_time_s(part_events, part_egress, WINDOWS,
                                       cmr_percent=cmr_ood)
        t_dqn = apa_time_s(packets, gpus=machines)
        t_dons = cluster_time_s(part_events, part_egress, WINDOWS,
                                cmr_percent=cmr_dod)
        speedups[machines] = {
            "dqn": t_omnet / t_dqn,
            "dons": t_omnet / t_dons,
        }
        rows += [
            (machines, "OMNeT++", 0, format_duration(t_omnet), "baseline", "-"),
            (machines, "DQN", machines, format_duration(t_dqn),
             f"{t_omnet / t_dqn:.1f}x", f"{w1_dqn:.2f}"),
            (machines, "DONS", 0, format_duration(t_dons),
             f"{t_omnet / t_dons:.1f}x", "0"),
        ]

    emit("table1_fattree64", format_table(
        "Table 1: FatTree64 (65,536 servers) simulation time",
        ["#machines", "simulator", "#GPUs", "time", "speedup", "w1"],
        rows,
        note="paper: OMNeT++ 9d14h/7d19h; DQN 78.5x/104.1x w1>0.4; "
             "DONS 42.2x/65.0x w1=0",
    ))

    # --- shape assertions -------------------------------------------------
    for m in (4, 8):
        sp = speedups[m]
        assert sp["dons"] > 15, f"{m} machines: DONS speedup {sp['dons']:.0f}"
        assert sp["dqn"] > sp["dons"], "DQN should be fastest (accuracy traded)"
        assert sp["dqn"] / sp["dons"] < 10, "DQN lead should stay moderate"
    # Near-linear DONS scaling 4 -> 8 machines vs OMNeT++'s ~1.2x
    # (paper: DONS 42.2x -> 65x while OMNeT++ barely improves).
    ratio = speedups[8]["dons"] / speedups[4]["dons"]
    assert 1.2 < ratio < 2.6, f"scaling ratio {ratio:.2f}"
    # DONS 8-machine speedup: tens of x (paper 65x; see EXPERIMENTS.md).
    assert 25 <= speedups[8]["dons"] <= 110
    # DQN pays measurable accuracy (paper w1 >= 0.43).
    assert w1_dqn > 0.25, f"DQN w1 too good: {w1_dqn:.2f}"
