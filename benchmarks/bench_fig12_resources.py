"""Fig. 12 — memory usage, cache miss rate, CPU utilization by simulator.

(a) memory: ns-3 grows with LPs, OMNeT++ flat, DONS ~10x smaller;
(b) cache miss rate: ns-3/OMNeT++ > 1% growing, DONS lowest (0.12% at
    FatTree32, "reduced by 56x at the highest, 4.5x at the lowest");
(c) CPU utilization: ns-3/OMNeT++ = #processes used; DONS rises from
    1003% to 2634% across topologies, near all 32 cores.
"""

from __future__ import annotations

import pytest

from conftest import once
from repro.bench import emit, format_table, measure_cmr
from repro.bench.scenarios import dcn_scenario, run_dons_probed
from repro.des import ParallelOodSimulator, contiguous_partition
from repro.des.simulator import OodSimulator
from repro.machine import (
    DodAccessModel, OodAccessModel, StructuralCounts, XEON_SERVER,
    dons_memory_bytes, dons_utilization_percent, ns3_memory_bytes,
    omnet_memory_bytes, ood_utilization_percent,
)
from repro.machine.cost import cost_cmr
from repro.units import GIB


def test_fig12a_memory_by_simulator(benchmark):
    ks = (4, 8, 16, 32)

    def experiment():
        out = {}
        for k in ks:
            counts = StructuralCounts.from_fattree_k(k)
            out[k] = (
                ns3_memory_bytes(counts, processes=32),
                omnet_memory_bytes(counts, processes=32),
                dons_memory_bytes(counts),
            )
        return out

    mem = once(benchmark, experiment)

    rows = [
        (f"FatTree{k}", f"{mem[k][0] / GIB:.1f}", f"{mem[k][1] / GIB:.1f}",
         f"{mem[k][2] / GIB:.2f}")
        for k in ks
    ]
    emit("fig12a_memory", format_table(
        "Fig 12a: memory usage (GB), 32 LPs for the OOD simulators",
        ["topology", "ns-3 (32p)", "OMNeT++ (32p)", "DONS"],
        rows,
        note="paper anchors: ns-3 FatTree16x32p = 132.5 GB; "
             "DONS FatTree32 = 12.6 GB",
    ))

    # At FatTree4 fixed runtime overheads dominate every simulator; the
    # paper's memory ordering is about at-scale state (FatTree8 up).
    for k in ks:
        ns3, omnet, dons = mem[k]
        if k >= 8:
            assert dons < omnet <= ns3, f"FatTree{k}: ordering broken"
    # DONS ~10x below OMNeT++ at FatTree32 (paper: 12.6 vs ~126 GB).
    assert mem[32][1] / mem[32][2] > 5
    # ns-3's 32-process FatTree32 needs thousands of GB (paper: >5000).
    assert mem[32][0] / GIB > 3000


def test_fig12b_cache_and_fig12c_utilization(benchmark):
    ks = (4, 8, 16)

    def experiment():
        out = {}
        for k in ks:
            scenario = dcn_scenario(k, duration_ms=0.5, max_flows=75 * k,
                                    seed=5)
            topo = scenario.topology
            ood = OodAccessModel(topo.num_nodes, topo.num_interfaces,
                                 topo.num_hosts)
            OodSimulator(scenario, op_hook=ood).run()
            dod = DodAccessModel(topo.num_nodes, topo.num_interfaces,
                                 topo.num_hosts, len(scenario.flows))
            dons = run_dons_probed(scenario, dod)
            psim = ParallelOodSimulator(
                scenario, contiguous_partition(topo, min(32, topo.num_nodes - 1)))
            psim.run()
            out[k] = {
                "cmr_ood": measure_cmr(ood),
                "cmr_dod": measure_cmr(dod),
                "dons_util": dons_utilization_percent(
                    dons.window_breakdown,
                    cost_cmr(measure_cmr(dod), is_dod=True),
                    XEON_SERVER, XEON_SERVER.cores),
                "ood_util": ood_utilization_percent(
                    32, psim.stats.lp_events),
            }
        return out

    data = once(benchmark, experiment)

    rows = [
        (f"FatTree{k}", f"{data[k]['cmr_ood']:.2f}%",
         f"{data[k]['cmr_dod']:.3f}%",
         f"{data[k]['ood_util']:.0f}%", f"{data[k]['dons_util']:.0f}%")
        for k in ks
    ]
    emit("fig12bc_cache_util", format_table(
        "Fig 12b/c: L3 miss rate and CPU utilization",
        ["topology", "ood CMR", "DONS CMR", "ns-3(32p) util", "DONS util"],
        rows,
        note="paper: DONS util rises 1003% -> 2634% with scale; "
             "CMR gap 4.5x-56x",
    ))

    for k in ks:
        d = data[k]
        assert d["cmr_ood"] > 1.0
        assert d["cmr_ood"] / max(d["cmr_dod"], 1e-6) > 4.5
    utils = [data[k]["dons_util"] for k in ks]
    assert utils[0] < utils[-1], "DONS utilization should grow with scale"
    assert utils[-1] > 800, f"DONS utilization too low at FatTree16: {utils}"
    assert all(u <= 3200 for u in utils)
