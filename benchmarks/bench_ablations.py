"""Ablations of the design choices DESIGN.md calls out.

1. **System order (§3.3)** — the paper proves ACK-Send-Forward-Transmit
   preserves LCC and rejects the naive Send-Forward-Transmit-ACK order.
   We run both orders: the paper order reproduces the sequential ground
   truth exactly; the naive order diverges (ACK-generated packets drift
   by one lookahead batch).

2. **Lookahead = min link delay (§3.3)** — any smaller batch is equally
   correct (trace-identical) but pays more window/barrier overhead; the
   modeled cost rises as the batch shrinks.  This is why DONS picks the
   *largest* safe lookahead.

3. **Stream prefetcher (machine model)** — without prefetching, DONS's
   sequential sweeps would miss once per line; the prefetcher is what
   turns the columnar layout into near-zero L3 misses, mirroring real
   hardware.
"""

from __future__ import annotations

import pytest

from conftest import once
from repro.bench import (
    emit, format_table, measure_cmr, run_dons_probed, scaled_l3_config,
)
from repro.bench.scenarios import dcn_scenario
from repro.core.engine import DodEngine
from repro.des import run_baseline
from repro.des.simulator import OodSimulator
from repro.machine import CacheConfig, DodAccessModel, XEON_SERVER, dons_time_s
from repro.machine.cache import CacheSim
from repro.machine.cost import cost_cmr
from repro.metrics import TraceLevel
from repro.units import us


def test_ablation_system_order(benchmark):
    scenario = dcn_scenario(4, duration_ms=0.5, max_flows=120, seed=5)

    def experiment():
        truth = run_baseline(scenario, TraceLevel.FULL)
        paper = DodEngine(scenario, TraceLevel.FULL,
                          system_order="paper").run()
        naive = DodEngine(scenario, TraceLevel.FULL,
                          system_order="naive").run()
        return truth, paper, naive

    truth, paper, naive = once(benchmark, experiment)

    paper_ok = truth.trace.sorted_entries() == paper.trace.sorted_entries()
    naive_ok = truth.trace.sorted_entries() == naive.trace.sorted_entries()
    emit("ablation_system_order", format_table(
        "Ablation: system execution order vs sequential ground truth",
        ["order", "trace identical", "completed flows"],
        [("ACK,Send,Forward,Transmit (paper)", paper_ok, paper.completed()),
         ("Send,Forward,Transmit,ACK (naive)", naive_ok, naive.completed())],
        note="the naive order defers ACK-generated packets by one batch "
             "(the LCC violation of §3.3)",
    ))
    assert paper_ok, "paper order must reproduce ground truth"
    assert not naive_ok, "naive order should observably diverge"
    # It still simulates *a* network — flows complete, just differently.
    assert naive.completed() == len(scenario.flows)


def test_ablation_lookahead(benchmark):
    scenario = dcn_scenario(4, duration_ms=0.3, max_flows=120, seed=5)
    fractions = (1.0, 0.5, 0.25, 0.125)

    def experiment():
        truth = run_baseline(scenario, TraceLevel.FULL).trace.digest()
        out = {}
        for frac in fractions:
            la = max(1, int(scenario.lookahead_ps * frac))
            res = DodEngine(scenario, TraceLevel.FULL,
                            lookahead_override=la).run()
            out[frac] = (res.trace.digest() == truth,
                         len(res.window_breakdown), res)
        return out

    data = once(benchmark, experiment)

    rows = []
    costs = {}
    for frac, (identical, windows, res) in data.items():
        bd = dons_time_s(res.window_breakdown, 0.12, XEON_SERVER, 32)
        costs[frac] = bd.total_s
        rows.append((f"{frac:.3f} x min-delay", identical, windows,
                     f"{bd.total_s * 1e3:.2f} ms"))
    emit("ablation_lookahead", format_table(
        "Ablation: batch length (lookahead) vs correctness and cost",
        ["lookahead", "trace identical", "busy windows", "modeled time"],
        rows,
        note="every safe lookahead is exact; the largest one is cheapest "
             "— hence 'batch length = min link delay'",
    ))
    assert all(identical for identical, _w, _r in data.values())
    assert costs[1.0] <= costs[0.25] <= costs[0.125]


def test_ablation_prefetcher(benchmark):
    scenario = dcn_scenario(8, duration_ms=0.5, max_flows=600, seed=5)
    topo = scenario.topology

    def experiment():
        dod = DodAccessModel(topo.num_nodes, topo.num_interfaces,
                             topo.num_hosts, len(scenario.flows))
        run_dons_probed(scenario, dod)
        base_cfg = scaled_l3_config()
        with_pf = CacheSim(base_cfg).run(dod.addresses, warmup=0.5)
        no_pf_cfg = CacheConfig(size_bytes=base_cfg.size_bytes,
                                prefetch_degree=0)
        without_pf = CacheSim(no_pf_cfg).run(dod.addresses, warmup=0.5)
        return with_pf, without_pf

    with_pf, without_pf = once(benchmark, experiment)

    emit("ablation_prefetcher", format_table(
        "Ablation: stream prefetcher in the cache model (DONS stream)",
        ["prefetcher", "L3 miss rate"],
        [("on (degree 4)", f"{with_pf.miss_rate_percent:.3f}%"),
         ("off", f"{without_pf.miss_rate_percent:.3f}%")],
        note="sequential column sweeps rely on prefetching, as on real "
             "hardware; scattered OOD traffic gains almost nothing",
    ))
    assert without_pf.miss_rate > 3 * with_pf.miss_rate
    assert with_pf.prefetched_hits > 0
