"""§6.1 'Scale of simulation' — the largest topology each simulator fits.

Paper: on a 128 GB server both ns-3 and OMNeT++ are limited at FatTree32
(OOM beyond); DONS reaches FatTree48 (27,648 servers).  On an 8 GB
MacBook Air M1, DONS reaches FatTree16 (1,024 servers) and simulates
1000 ms in 22 minutes, vs ~7.8 h for OMNeT++.
"""

from __future__ import annotations

import pytest

from conftest import once
from repro.bench import emit, format_table
from repro.machine import MACBOOK_M1, XEON_SERVER, max_fattree
from repro.units import GIB

#: Memory the OS and runtime keep from the simulator.
SERVER_AVAILABLE = XEON_SERVER.mem_bytes
LAPTOP_AVAILABLE = int(5.5 * GIB)  # 8 GB minus macOS baseline


def test_scale_limits(benchmark):
    def experiment():
        return {
            ("server", "ns-3"): max_fattree(SERVER_AVAILABLE, "ns-3"),
            ("server", "omnet++"): max_fattree(SERVER_AVAILABLE, "omnet++"),
            ("server", "dons"): max_fattree(SERVER_AVAILABLE, "dons"),
            ("laptop", "dons"): max_fattree(LAPTOP_AVAILABLE, "dons"),
        }

    limits = once(benchmark, experiment)

    paper = {("server", "ns-3"): 32, ("server", "omnet++"): 32,
             ("server", "dons"): 48, ("laptop", "dons"): 16}
    rows = [
        (where, sim, f"FatTree{k}", f"FatTree{paper[(where, sim)]}")
        for (where, sim), k in limits.items()
    ]
    emit("scale_limits", format_table(
        "Max FatTree per simulator (modeled memory vs capacity)",
        ["machine", "simulator", "modeled max", "paper max"],
        rows,
        note="server = 32c/128GB Xeon; laptop = M1 with ~5.5 GB available",
    ))

    # ns-3/OMNeT++ cap exactly where the paper says.
    assert limits[("server", "ns-3")] == 32
    assert limits[("server", "omnet++")] == 32
    # DONS goes far beyond the OOD family on the same machine...
    assert limits[("server", "dons")] >= 48
    # ...but FatTree64 still needs the cluster (paper §4).
    assert limits[("server", "dons")] < 64
    # A laptop fits a 1024-server FatTree (paper: FatTree16 on the M1).
    assert limits[("laptop", "dons")] >= 16
