"""§2.1's three simulator families on one workload — the trade-off table.

The paper motivates DONS by placing DES against CTS (fast, flow-level,
no transients) and APA (fast, learned, approximate).  This bench runs
all three families this repository implements on the same scenario and
reports cost vs accuracy:

* DES (DONS): exact; cost ~ packets.
* CTS (max-min fluid): cost ~ flows; misses slow start/queueing, so its
  FCTs deviate measurably.
* APA (DQN-like): cost ~ GPU batch; trained approximation with w1 error.

It quantifies the paper's claim that only DES gives full fidelity.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import once
from repro.apa import DeepQueueNetLike
from repro.bench import emit, format_table
from repro.bench.scenarios import dcn_scenario
from repro.cts import FluidSimulator
from repro.des import run_baseline
from repro.core.engine import run_dons
from repro.metrics import normalized_w1


def test_simulator_family_tradeoffs(benchmark):
    scenario = dcn_scenario(8, duration_ms=1.0, load=0.5, max_flows=300,
                            seed=13)

    def experiment():
        truth = run_dons(scenario)
        fluid = FluidSimulator(scenario)
        cts = fluid.run()
        train = []
        for seed in (1, 2, 3):
            sc = dcn_scenario(8, duration_ms=1.0, load=0.5, max_flows=200,
                              seed=seed)
            train.append((sc, run_baseline(sc)))
        apa = DeepQueueNetLike().fit(train)
        pred = apa.predict(scenario)
        return truth, cts, fluid.rate_events, pred

    truth, cts, rate_events, pred = once(benchmark, experiment)

    truth_fcts = np.array(truth.fcts_ps(), dtype=float)
    ids = [fid for fid in sorted(truth.flows)
           if truth.flows[fid].fct_ps is not None]
    cts_fcts = np.array([cts.flows[fid].fct_ps for fid in ids], dtype=float)
    apa_fcts = np.array([pred.fct_ps[fid] for fid in ids], dtype=float)

    w1_cts = normalized_w1(cts_fcts, truth_fcts)
    w1_apa = normalized_w1(apa_fcts, truth_fcts)

    rows = [
        ("DES (DONS)", f"{truth.events.total} packet events", "exact (0)"),
        ("CTS (max-min fluid)", f"{rate_events} rate events",
         f"FCT w1 = {w1_cts:.2f}"),
        ("APA (DQN-like)", f"{pred.packets_scored} packets scored, 1 pass",
         f"FCT w1 = {w1_apa:.2f}"),
    ]
    emit("simulator_families", format_table(
        "§2.1 simulator families: cost vs accuracy on one workload",
        ["family", "work performed", "accuracy vs packet-level DES"],
        rows,
        note="CTS/APA are orders of magnitude cheaper and measurably "
             "wrong — the paper's case for fixing DES instead",
    ))

    # CTS does orders of magnitude less work than packet-level DES.
    assert rate_events * 50 < truth.events.total
    # Both approximations deviate measurably; DES is the reference.
    assert w1_cts > 0.05
    assert w1_apa > 0.05
    # CTS strictly underestimates (no slow start / queueing transients).
    assert cts_fcts.mean() < truth_fcts.mean()
